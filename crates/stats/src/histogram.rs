//! A sparse histogram over unsigned integer values.

use std::collections::BTreeMap;

/// A sparse histogram of `u64` samples.
///
/// Used for the paper's distribution plots: dynamic frame sizes (Fig. 3),
/// call depths, LVAQ occupancies. Memory is proportional to the number of
/// *distinct* values, so wide ranges are fine.
///
/// ```
/// use dda_stats::Histogram;
///
/// let frames: Histogram = [2u64, 2, 3, 4, 7].into_iter().collect();
/// assert_eq!(frames.quantile(0.5), Some(3));
/// assert_eq!(frames.mean(), Some(3.6));
/// assert_eq!(frames.max(), Some(7));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one occurrence of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n > 0 {
            *self.counts.entry(value).or_insert(0) += n;
            self.total += n;
        }
    }

    /// Total number of samples recorded.
    #[inline]
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of occurrences of `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        Some(sum / self.total as f64)
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// The smallest value `v` such that at least `q` (0..=1) of the samples
    /// are ≤ `v`; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1");
        if self.total == 0 {
            return None;
        }
        let need = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= need {
                return Some(v);
            }
        }
        self.max()
    }

    /// Fraction of samples with value ≤ `v` (0 when empty).
    pub fn cdf(&self, v: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let le: u64 = self.counts.range(..=v).map(|(_, &c)| c).sum();
        le as f64 / self.total as f64
    }

    /// Iterates `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &c) in &other.counts {
            self.record_n(v, c);
        }
    }

    /// Returns the histogram of samples recorded in `self` but not in
    /// `earlier` — the per-value count difference, saturating at zero.
    ///
    /// Used for interval-sampling window deltas: `earlier` is a snapshot
    /// of this histogram taken at the window start, so every count in it
    /// is (by construction) ≤ the corresponding count in `self`. Counts
    /// present only in `earlier` are ignored rather than underflowing.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (&v, &c) in &self.counts {
            let d = c.saturating_sub(earlier.count(v));
            out.record_n(v, d);
        }
        out
    }

    /// Appends this histogram to `w` as a `u32` pair count followed by
    /// `(value, count)` `u64` pairs in ascending value order — the stable
    /// wire form used by serialized result records.
    ///
    /// # Panics
    ///
    /// Panics if the histogram holds more than `u32::MAX` distinct values
    /// (occupancy histograms top out at queue capacities).
    pub fn encode(&self, w: &mut crate::ByteWriter) {
        let n = u32::try_from(self.counts.len());
        let n = match n {
            Ok(n) => n,
            Err(_) => panic!("histogram with {} distinct values", self.counts.len()),
        };
        w.put_u32(n);
        for (&v, &c) in &self.counts {
            w.put_u64(v);
            w.put_u64(c);
        }
    }

    /// Reads a histogram written by [`Histogram::encode`].
    ///
    /// # Errors
    ///
    /// [`crate::CodecError`] when the input is truncated.
    pub fn decode(r: &mut crate::ByteReader) -> Result<Histogram, crate::CodecError> {
        let n = r.get_u32()?;
        let mut h = Histogram::new();
        for _ in 0..n {
            let v = r.get_u64()?;
            let c = r.get_u64()?;
            h.record_n(v, c);
        }
        Ok(h)
    }

    /// Groups samples into fixed-width buckets `[0,w), [w,2w), ...` and
    /// returns `(bucket_start, count)` pairs for non-empty buckets.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn bucketed(&self, width: u64) -> Vec<(u64, u64)> {
        assert!(width > 0, "bucket width must be positive");
        let mut out: BTreeMap<u64, u64> = BTreeMap::new();
        for (&v, &c) in &self.counts {
            *out.entry(v / width * width).or_insert(0) += c;
        }
        out.into_iter().collect()
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Histogram {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.cdf(10), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let h: Histogram = [1, 2, 3, 4].into_iter().collect();
        assert_eq!(h.samples(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(4));
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(9), 0);
    }

    #[test]
    fn quantiles() {
        let h: Histogram = (1..=100).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let h: Histogram = [1].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn cdf_is_monotone() {
        let h: Histogram = [2, 2, 4, 8].into_iter().collect();
        assert_eq!(h.cdf(1), 0.0);
        assert_eq!(h.cdf(2), 0.5);
        assert_eq!(h.cdf(4), 0.75);
        assert_eq!(h.cdf(8), 1.0);
        assert_eq!(h.cdf(u64::MAX), 1.0);
    }

    #[test]
    fn merge_and_record_n() {
        let mut a: Histogram = [1, 1].into_iter().collect();
        let mut b = Histogram::new();
        b.record_n(1, 3);
        b.record_n(5, 2);
        b.record_n(9, 0); // no-op
        a.merge(&b);
        assert_eq!(a.count(1), 5);
        assert_eq!(a.count(5), 2);
        assert_eq!(a.count(9), 0);
        assert_eq!(a.samples(), 7);
    }

    #[test]
    fn diff_subtracts_a_snapshot() {
        let mut h: Histogram = [1, 1, 5].into_iter().collect();
        let snap = h.clone();
        h.extend([1u64, 2, 5, 5]);
        let d = h.diff(&snap);
        assert_eq!(d.count(1), 1);
        assert_eq!(d.count(2), 1);
        assert_eq!(d.count(5), 2);
        assert_eq!(d.samples(), 4);
        // Values only in the snapshot saturate to zero, not underflow.
        let weird: Histogram = [9u64, 9].into_iter().collect();
        assert_eq!(h.diff(&weird).samples(), h.samples());
    }

    #[test]
    fn bucketing() {
        let h: Histogram = [0, 1, 7, 8, 9, 16].into_iter().collect();
        assert_eq!(h.bucketed(8), vec![(0, 3), (8, 2), (16, 1)]);
    }

    #[test]
    fn codec_round_trip() {
        let mut h: Histogram = [1u64, 1, 5, 900, u64::MAX].into_iter().collect();
        h.record_n(7, 3);
        let mut w = crate::ByteWriter::new();
        h.encode(&mut w);
        let buf = w.into_vec();
        let mut r = crate::ByteReader::new(&buf);
        let back = Histogram::decode(&mut r).unwrap();
        assert_eq!(back, h);
        assert_eq!(r.remaining(), 0);
        // Empty histograms round-trip too.
        let mut w = crate::ByteWriter::new();
        Histogram::new().encode(&mut w);
        let buf = w.into_vec();
        let back = Histogram::decode(&mut crate::ByteReader::new(&buf)).unwrap();
        assert!(back.is_empty());
        // Truncation is an error, not a panic.
        assert!(Histogram::decode(&mut crate::ByteReader::new(&[1, 0, 0, 0])).is_err());
    }

    #[test]
    fn extend_trait() {
        let mut h = Histogram::new();
        h.extend([3u64, 3, 3]);
        assert_eq!(h.count(3), 3);
    }
}
