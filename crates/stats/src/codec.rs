//! A tiny little-endian byte codec and a stable content hash.
//!
//! Checkpoints and cache-tag snapshots are serialized with this codec so
//! the workspace stays free of external serialization crates. The format
//! is deliberately dumb: fixed-width little-endian integers plus
//! length-prefixed byte runs. Every consumer layers its own magic number
//! and version word on top, so codec-level framing never needs to evolve.
//!
//! [`fnv1a64`] is the content hash used for content-addressed checkpoint
//! keys. Unlike [`crate::FibHasher`] (a hot-path map hasher with no
//! stability promise), FNV-1a here is a *format* commitment: the digest
//! of a given byte string must never change across releases, or every
//! stored checkpoint key would silently rot.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable FNV-1a 64-bit hash of a byte string.
///
/// ```
/// // The empty string hashes to the offset basis — a format constant.
/// assert_eq!(dda_stats::fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(dda_stats::fnv1a64(b"a"), dda_stats::fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Error returned when a [`ByteReader`] runs past the end of its input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CodecError {
    /// Byte offset at which the read was attempted.
    pub at: usize,
    /// Number of bytes the read needed.
    pub wanted: usize,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated input: wanted {} bytes at offset {}",
            self.wanted, self.at
        )
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte encoder.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Creates a writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    ///
    /// Round-trips every value bit-exactly (NaN payloads included) —
    /// result records must decode to *identical* floats, not nearly-equal
    /// ones, for cached-vs-fresh differential checks to be meaningful.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with no framing.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends bytes prefixed with their `u32` length.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than `u32::MAX` — checkpoint sections
    /// are orders of magnitude smaller.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let n = u32::try_from(bytes.len());
        let n = match n {
            Ok(n) => n,
            Err(_) => panic!("byte run of {} exceeds u32 framing", bytes.len()),
        };
        self.put_u32(n);
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential little-endian byte decoder over a borrowed slice.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at offset 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError {
                at: self.pos,
                wanted: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64` written by [`ByteWriter::put_f64`], bit-exactly.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte run (written by
    /// [`ByteWriter::put_bytes`]).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_bit_exactly() {
        let mut w = ByteWriter::new();
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NAN, f64::MIN_POSITIVE] {
            w.put_f64(v);
        }
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NAN, f64::MIN_POSITIVE] {
            assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bytes(b"hello");
        w.put_raw(&[1, 2, 3]);
        let buf = w.into_vec();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8(), Ok(0xAB));
        assert_eq!(r.get_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Ok(0x0123_4567_89AB_CDEF));
        assert_eq!(r.get_bytes(), Ok(&b"hello"[..]));
        assert_eq!(r.get_raw(3), Ok(&[1u8, 2, 3][..]));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf);
        assert!(r.get_u32().is_err());
        // A failed read consumes nothing.
        assert_eq!(r.position(), 0);
        assert_eq!(r.get_u8(), Ok(1));
    }

    #[test]
    fn length_prefix_larger_than_input_is_an_error() {
        let mut w = ByteWriter::new();
        w.put_u32(1000); // claims 1000 bytes follow
        w.put_u8(7);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Known-answer vectors: these digests are a format commitment.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
