//! Plain-text table rendering for experiment reports.

use core::fmt;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Align {
    /// Left-aligned (default; good for labels).
    #[default]
    Left,
    /// Right-aligned (good for numbers).
    Right,
}

/// A simple text table: a header row, data rows, per-column alignment.
///
/// Renders via [`core::fmt::Display`] as an aligned, pipe-separated table
/// that reads well both on a terminal and as Markdown.
///
/// ```
/// use dda_stats::{Table, Align};
///
/// let mut t = Table::new(["program", "IPC"]);
/// t.align(1, Align::Right);
/// t.row(["099.go", "5.41"]);
/// t.row(["130.li", "4.02"]);
/// let text = t.to_string();
/// assert!(text.contains("| 099.go  | 5.41 |"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let n = headers.len();
        Table {
            headers,
            rows: Vec::new(),
            aligns: vec![Align::Left; n],
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn title(&mut self, t: impl Into<String>) -> &mut Self {
        self.title = Some(t.into());
        self
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, a: Align) -> &mut Self {
        self.aligns[col] = a;
        self
    }

    /// Right-aligns every column except the first.
    pub fn numeric(&mut self) -> &mut Self {
        for c in 1..self.aligns.len() {
            self.aligns[c] = Align::Right;
        }
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for ((cell, &w), a) in cells.iter().zip(&widths).zip(&self.aligns) {
                match a {
                    Align::Left => write!(f, " {cell:<w$} |")?,
                    Align::Right => write!(f, " {cell:>w$} |")?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for (&w, a) in widths.iter().zip(&self.aligns) {
            match a {
                Align::Left => write!(f, "{:-<1$}|", "", w + 2)?,
                Align::Right => write!(f, "{:-<1$}:|", "", w + 1)?,
            }
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.align(1, Align::Right);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "| name  | value |");
        assert_eq!(lines[1], "|-------|------:|");
        assert_eq!(lines[2], "| alpha |     1 |");
        assert_eq!(lines[3], "| b     | 12345 |");
    }

    #[test]
    fn title_is_printed_first() {
        let mut t = Table::new(["x"]);
        t.title("Figure 5");
        t.row(["1"]);
        assert!(t.to_string().starts_with("Figure 5\n"));
    }

    #[test]
    fn numeric_right_aligns_all_but_first() {
        let mut t = Table::new(["k", "a", "b"]);
        t.numeric();
        assert_eq!(t.aligns, vec![Align::Left, Align::Right, Align::Right]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn row_count() {
        let mut t = Table::new(["a"]);
        assert_eq!(t.n_rows(), 0);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.n_rows(), 2);
    }
}
