#![warn(missing_docs)]

//! # dda-stats — counters, histograms and report tables
//!
//! Small, dependency-free statistics utilities shared by the simulator and
//! the experiment harness: a sparse integer [`Histogram`] (used for the
//! paper's frame-size and queue-occupancy distributions), a plain-text
//! [`Table`] renderer (used to print every reproduced table and figure),
//! a seeded [`Rng`] (used by the workload generators so the workspace
//! builds with no external crates), and a cheap [`FibHasher`] for the
//! simulator's integer-keyed hot-path maps.

mod codec;
mod hash;
mod histogram;
mod rng;
mod table;

pub use codec::{fnv1a64, ByteReader, ByteWriter, CodecError};
pub use hash::{FastMap, FibHasher};
pub use histogram::Histogram;
pub use rng::{Rng, SampleRange};
pub use table::{Align, Table};

/// Formats a fraction as a percentage with one decimal, `"—"` when the
/// denominator is zero.
///
/// ```
/// assert_eq!(dda_stats::pct(1, 8), "12.5%");
/// assert_eq!(dda_stats::pct(3, 0), "—");
/// ```
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "—".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Relative speedup of `new` over `base` as a signed percentage string.
///
/// ```
/// assert_eq!(dda_stats::speedup_pct(1.1, 1.0), "+10.0%");
/// assert_eq!(dda_stats::speedup_pct(0.95, 1.0), "-5.0%");
/// ```
pub fn speedup_pct(new: f64, base: f64) -> String {
    if base == 0.0 {
        return "—".to_string();
    }
    let s = 100.0 * (new / base - 1.0);
    format!("{s:+.1}%")
}

#[cfg(test)]
mod tests {
    #[test]
    fn pct_handles_zero_denominator() {
        assert_eq!(super::pct(5, 0), "—");
        assert_eq!(super::pct(0, 10), "0.0%");
        assert_eq!(super::pct(10, 10), "100.0%");
    }

    #[test]
    fn speedup_signs() {
        assert_eq!(super::speedup_pct(2.0, 1.0), "+100.0%");
        assert_eq!(super::speedup_pct(1.0, 2.0), "-50.0%");
        assert_eq!(super::speedup_pct(1.0, 0.0), "—");
    }
}
