//! The basic-block translation cache.
//!
//! Blocks are discovered at first execution: when replay reaches a pc
//! with no decoded block, the cache decodes from that pc to the next
//! control transfer (or static leader, or the length cap) exactly once
//! and replays the pre-decoded micro-op trace from then on. The leader
//! set comes from the static pre-scan ([`Program::leaders`]); pcs only
//! reachable dynamically (indirect-call targets) become block starts the
//! first time control actually arrives there.
//!
//! Programs are immutable (`Arc<Program>`), so there is no invalidation:
//! a decoded block and every resolved successor link stay valid for the
//! life of the machine.

use dda_program::Program;

use crate::block::{Block, MicroOp, Terminator, MAX_BLOCK_OPS, NO_BLOCK};

/// Counters describing translation-cache behaviour.
///
/// `blocks_replayed` counts block executions (including partial replays
/// cut short by a fault); `blocks_decoded` counts decode-once events, so
/// the [hit rate](TCacheStats::hit_rate) is the fraction of block
/// executions that never touched the decoder.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TCacheStats {
    /// Blocks decoded (each static region is decoded at most once).
    pub blocks_decoded: u64,
    /// Micro-ops materialised by the decoder (terminators included).
    pub ops_decoded: u64,
    /// Block executions through the replay loop.
    pub blocks_replayed: u64,
    /// Dynamic instructions emitted by the replay loop.
    pub ops_replayed: u64,
    /// Successor resolutions served by an inline-cached link (or the
    /// machine's chained block hint) without consulting the pc map.
    pub inline_hits: u64,
    /// Successor resolutions that fell back to the pc map.
    pub map_lookups: u64,
}

impl TCacheStats {
    /// Fraction of block executions served without decoding.
    pub fn hit_rate(&self) -> f64 {
        if self.blocks_replayed == 0 {
            0.0
        } else {
            1.0 - self.blocks_decoded as f64 / self.blocks_replayed as f64
        }
    }

    /// Mean dynamic instructions emitted per block execution.
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks_replayed == 0 {
            0.0
        } else {
            self.ops_replayed as f64 / self.blocks_replayed as f64
        }
    }

    /// Fraction of successor resolutions served by an inline cache.
    pub fn inline_hit_rate(&self) -> f64 {
        let total = self.inline_hits + self.map_lookups;
        if total == 0 {
            0.0
        } else {
            self.inline_hits as f64 / total as f64
        }
    }

    /// Accumulates another machine's counters (for sweep-wide reporting).
    pub fn merge(&mut self, other: &TCacheStats) {
        self.blocks_decoded += other.blocks_decoded;
        self.ops_decoded += other.ops_decoded;
        self.blocks_replayed += other.blocks_replayed;
        self.ops_replayed += other.ops_replayed;
        self.inline_hits += other.inline_hits;
        self.map_lookups += other.map_lookups;
    }
}

/// The serializable reconstruction recipe of one decoded block: its
/// start pc plus the resolved inline-cache links. The micro-ops
/// themselves are *not* serialized — decoding is deterministic, so
/// replaying `decode_block` over the starts (in original decode order,
/// which is block-id order) reproduces the identical `blocks`/`ops`
/// arrays, function pointers regenerated for the current process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct BlockRecipe {
    pub start: u32,
    pub succ: [u32; 2],
    pub dyn_succ: (u32, u32),
}

/// The translation cache of one [`crate::Vm`].
#[derive(Clone, Debug)]
pub(crate) struct TCache {
    /// pc → block id, dense over the program image ([`NO_BLOCK`] = not
    /// yet translated). Only block *start* pcs are registered.
    map: Vec<u32>,
    /// Decoded block headers.
    pub(crate) blocks: Vec<Block>,
    /// Flat micro-op array; blocks hold `(index, len)` ranges into it.
    pub(crate) ops: Vec<MicroOp>,
    /// Static leader flags from [`Program::leaders`].
    leaders: Vec<bool>,
    pub(crate) stats: TCacheStats,
}

impl TCache {
    pub fn new(program: &Program) -> TCache {
        TCache {
            map: vec![NO_BLOCK; program.len()],
            blocks: Vec::new(),
            ops: Vec::new(),
            leaders: program.leaders(),
            stats: TCacheStats::default(),
        }
    }

    /// The block starting at `pc`, decoding it on first use.
    ///
    /// `pc` must be inside the program image (the replay loop checks
    /// before calling, so an out-of-image pc faults as `PcOutOfRange`
    /// exactly where the interpreter would).
    pub fn block_at(&mut self, program: &Program, pc: u32) -> u32 {
        self.stats.map_lookups += 1;
        let id = self.map[pc as usize];
        if id != NO_BLOCK {
            return id;
        }
        self.decode_block(program, pc)
    }

    fn decode_block(&mut self, program: &Program, start: u32) -> u32 {
        let instrs = program.instrs();
        let image_len = instrs.len() as u32;
        let ops_start = self.ops.len() as u32;
        let mut pc = start;
        let (term_pc, term_instr, term) = loop {
            let instr = instrs[pc as usize];
            match Terminator::decode(pc, instr, image_len) {
                Some(t) => break (pc, instr, t),
                None => {
                    // Straight-line ops always decode to Some: decode
                    // returns None exactly when Terminator::decode
                    // returns Some.
                    if let Some(op) = MicroOp::decode(pc, instr) {
                        self.ops.push(op);
                    }
                }
            }
            pc += 1;
            let len = self.ops.len() as u32 - ops_start;
            if pc >= image_len || self.leaders[pc as usize] || len as usize >= MAX_BLOCK_OPS {
                // The next pc starts a different block (or leaves the
                // image): chain to it without a terminator instruction.
                break (pc, dda_isa::Instr::Nop, Terminator::FallThrough);
            }
        };
        let len = self.ops.len() as u32 - ops_start;
        let id = self.blocks.len() as u32;
        self.blocks.push(Block {
            start,
            ops: (ops_start, len),
            term,
            term_pc,
            term_instr,
            succ: [NO_BLOCK; 2],
            dyn_succ: (u32::MAX, NO_BLOCK),
        });
        self.map[start as usize] = id;
        self.stats.blocks_decoded += 1;
        self.stats.ops_decoded += len as u64
            + if matches!(term, Terminator::FallThrough) {
                0
            } else {
                1
            };
        id
    }

    /// Exports the reconstruction recipe: one [`BlockRecipe`] per block
    /// in decode (= block-id) order, plus the live counters.
    pub fn recipe(&self) -> Vec<BlockRecipe> {
        self.blocks
            .iter()
            .map(|b| BlockRecipe {
                start: b.start,
                succ: b.succ,
                dyn_succ: b.dyn_succ,
            })
            .collect()
    }

    /// Rebuilds a cache from a [`TCache::recipe`] export: re-decodes each
    /// block start in order (deterministic, so ids, op ranges and
    /// terminators come out identical), then patches the inline-cache
    /// links and counters back in.
    ///
    /// Returns `None` when the recipe does not fit the program (a start
    /// outside the image or not actually a fresh block start, or a link
    /// to a block id that does not exist) — checkpoint corruption, not a
    /// recoverable condition.
    pub fn rebuild(
        program: &Program,
        recipe: &[BlockRecipe],
        stats: TCacheStats,
    ) -> Option<TCache> {
        let n = recipe.len() as u32;
        let mut tc = TCache::new(program);
        for r in recipe {
            if r.start as usize >= program.len() || tc.map[r.start as usize] != NO_BLOCK {
                return None;
            }
            tc.decode_block(program, r.start);
        }
        for (id, r) in recipe.iter().enumerate() {
            let link_ok = |l: u32| l == NO_BLOCK || l < n;
            if !link_ok(r.succ[0]) || !link_ok(r.succ[1]) || !link_ok(r.dyn_succ.1) {
                return None;
            }
            let b = &mut tc.blocks[id];
            b.succ = r.succ;
            b.dyn_succ = r.dyn_succ;
        }
        tc.stats = stats;
        Some(tc)
    }
}
