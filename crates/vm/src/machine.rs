//! The architectural machine: registers, memory, sequential execution.

use core::fmt;
use std::sync::Arc;

use dda_isa::{Fpr, Gpr, Instr, MemWidth, StreamHint};
use dda_program::{MemRegion, Program};

use crate::block::{MemOp, MicroOp, OpKind, Terminator, MAX_BLOCK_OPS, NO_BLOCK};
use crate::memory::SparseMemory;
use crate::snapshot::{Checkpoint, CheckpointKey, SnapshotError, TCacheSnapshot};
use crate::tcache::{TCache, TCacheStats};

/// An error raised during functional execution.
///
/// Any of these indicates a malformed program (a generator or hand-written
/// assembly bug), not a simulated micro-architectural event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// The pc left the program image.
    PcOutOfRange {
        /// The faulting pc.
        pc: u32,
    },
    /// A load or store address was not aligned to the access size.
    Misaligned {
        /// The pc of the access.
        pc: u32,
        /// The effective address.
        addr: u32,
        /// The access size in bytes.
        bytes: u32,
    },
    /// A load or store touched an address outside every mapped region.
    OutOfRegion {
        /// The pc of the access.
        pc: u32,
        /// The effective address.
        addr: u32,
    },
    /// A `$sp`-relative (or near-stack) access ran past the stack limit —
    /// the frame layout overflowed the stack region.
    StackOverflow {
        /// The pc of the access.
        pc: u32,
        /// The effective address.
        addr: u32,
        /// The lowest legal stack address.
        limit: u32,
    },
    /// A taken branch, jump, call, or return targeted a pc outside the
    /// program image — fetching from there would decode garbage, the
    /// moral equivalent of an illegal instruction.
    IllegalTarget {
        /// The pc of the control transfer.
        pc: u32,
        /// The out-of-image target.
        target: u32,
    },
    /// `Ret` executed with no outstanding call.
    ReturnWithoutCall {
        /// The pc of the return.
        pc: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::PcOutOfRange { pc } => write!(f, "pc {pc} left the program image"),
            VmError::Misaligned { pc, addr, bytes } => {
                write!(f, "misaligned {bytes}-byte access to {addr:#x} at pc {pc}")
            }
            VmError::OutOfRegion { pc, addr } => {
                write!(f, "access to unmapped address {addr:#x} at pc {pc}")
            }
            VmError::StackOverflow { pc, addr, limit } => {
                write!(
                    f,
                    "stack overflow: access to {addr:#x} past limit {limit:#x} at pc {pc}"
                )
            }
            VmError::IllegalTarget { pc, target } => {
                write!(
                    f,
                    "control transfer to illegal target pc {target} at pc {pc}"
                )
            }
            VmError::ReturnWithoutCall { pc } => {
                write!(f, "return without a matching call at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Unmapped accesses this close below the stack limit are classified as
/// stack overflow even when computed through a register other than `$sp`
/// (a copied frame pointer walking off a frame).
const STACK_GUARD_BYTES: u32 = 4096;

/// Memory-access metadata attached to a dynamic load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemInfo {
    /// Effective byte address.
    pub addr: u32,
    /// Access size in bytes (1, 2, 4 or 8).
    pub bytes: u32,
    /// Whether the access writes memory.
    pub is_store: bool,
    /// Ground-truth region of the address.
    pub region: MemRegion,
    /// The compiler's stream hint carried by the instruction.
    pub hint: StreamHint,
    /// `Some((sp_version, offset))` when the access is `$sp`-based: the
    /// version of `$sp` at execution and the instruction's static offset.
    /// The LVAQ's fast data forwarding (paper §2.2.2) matches store→load
    /// pairs on exactly this pair, before effective addresses exist.
    pub stack_slot: Option<(u64, i32)>,
}

impl MemInfo {
    /// Whether the ground-truth region makes this a local-variable access.
    #[inline]
    pub fn is_local(&self) -> bool {
        self.region == MemRegion::Stack
    }
}

/// One executed (dynamic) instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DynInst {
    /// Dynamic sequence number (0-based).
    pub seq: u64,
    /// The pc the instruction was fetched from.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// The pc of the next instruction in the architectural order.
    pub next_pc: u32,
    /// Memory-access metadata for loads/stores.
    pub mem: Option<MemInfo>,
}

/// Summary of a [`Vm::run`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunSummary {
    /// Instructions executed by this call.
    pub executed: u64,
    /// Whether the machine reached `Halt`.
    pub halted: bool,
}

/// The functional simulator.
///
/// Executes the program in architectural order; [`Vm::step`] returns one
/// [`DynInst`] at a time, which is exactly the stream a perfect front-end
/// (paper Table 1) would feed the pipeline.
#[derive(Clone, Debug)]
pub struct Vm {
    program: Arc<Program>,
    pc: u32,
    gpr: [i32; 32],
    fpr: [f64; 32],
    mem: SparseMemory,
    sp_version: u64,
    seq: u64,
    call_depth: u32,
    max_call_depth: u32,
    halted: bool,
    /// Basic-block translation cache, created lazily on the first
    /// [`Vm::step_block`] call (plain [`Vm::step`] never pays for it).
    tcache: Option<Box<TCache>>,
    /// Predicted id of the block starting at the current pc, chained from
    /// the previous block's successor link ([`NO_BLOCK`] = no prediction).
    block_hint: u32,
}

impl Vm {
    /// Creates a machine at the program entry with `$sp` at the stack base
    /// and `$gp` at the global base.
    ///
    /// Accepts an owned [`Program`] or an `Arc<Program>`; passing the
    /// `Arc` lets many machines (e.g. a configuration sweep) share one
    /// program image instead of cloning it per run.
    pub fn new(program: impl Into<Arc<Program>>) -> Vm {
        let program = program.into();
        let mut gpr = [0i32; 32];
        gpr[Gpr::SP.index()] = program.layout().stack_base() as i32;
        gpr[Gpr::GP.index()] = program.layout().global_base() as i32;
        Vm {
            pc: program.entry(),
            program,
            gpr,
            fpr: [0.0; 32],
            mem: SparseMemory::new(),
            sp_version: 0,
            seq: 0,
            call_depth: 0,
            max_call_depth: 0,
            halted: false,
            tcache: None,
            block_hint: NO_BLOCK,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current pc.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether `Halt` has been executed.
    #[inline]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    #[inline]
    pub fn instructions_executed(&self) -> u64 {
        self.seq
    }

    /// Current call depth (0 in the entry function).
    #[inline]
    pub fn call_depth(&self) -> u32 {
        self.call_depth
    }

    /// Deepest call depth reached so far.
    #[inline]
    pub fn max_call_depth(&self) -> u32 {
        self.max_call_depth
    }

    /// Monotone counter bumped on every architectural write to `$sp`.
    #[inline]
    pub fn sp_version(&self) -> u64 {
        self.sp_version
    }

    /// Reads a general-purpose register (`$zero` reads 0).
    #[inline]
    pub fn gpr(&self, r: Gpr) -> i32 {
        if r.is_zero() {
            0
        } else {
            self.gpr[r.index()]
        }
    }

    /// Writes a general-purpose register (writes to `$zero` are ignored).
    #[inline]
    pub fn set_gpr(&mut self, r: Gpr, v: i32) {
        if !r.is_zero() {
            if r == Gpr::SP {
                self.sp_version += 1;
            }
            self.gpr[r.index()] = v;
        }
    }

    /// Reads a floating-point register.
    #[inline]
    pub fn fpr(&self, r: Fpr) -> f64 {
        self.fpr[r.index()]
    }

    /// Writes a floating-point register.
    #[inline]
    pub fn set_fpr(&mut self, r: Fpr, v: f64) {
        self.fpr[r.index()] = v;
    }

    /// Direct access to data memory (for test setup and inspection).
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to data memory (for test setup).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    fn check_access(&self, pc: u32, addr: u32, bytes: u32) -> Result<MemRegion, VmError> {
        if !addr.is_multiple_of(bytes) {
            return Err(VmError::Misaligned { pc, addr, bytes });
        }
        let region = self.program.layout().region_of(addr);
        if region == MemRegion::Unmapped {
            return Err(VmError::OutOfRegion { pc, addr });
        }
        Ok(region)
    }

    /// The shared architectural access check: one implementation serves
    /// both the interpreter (which builds the [`MemOp`] on the fly) and
    /// the block replayer (which pre-decoded it), so the two front-ends
    /// cannot drift apart in fault or classification semantics.
    fn mem_info(&self, pc: u32, m: &MemOp) -> Result<(u32, MemInfo), VmError> {
        let addr = (self.gpr(m.base) as u32).wrapping_add(m.offset as u32);
        let region = match self.check_access(pc, addr, m.bytes) {
            Ok(region) => region,
            Err(VmError::OutOfRegion { pc, addr }) => {
                // An unmapped access through `$sp`, or just below the
                // stack region, is a frame layout running off the end of
                // the stack — report it as the overflow it is.
                let limit = self.program.layout().stack_limit();
                let in_guard = addr < limit && limit - addr <= STACK_GUARD_BYTES;
                if m.base_is_sp || in_guard {
                    return Err(VmError::StackOverflow { pc, addr, limit });
                }
                return Err(VmError::OutOfRegion { pc, addr });
            }
            Err(e) => return Err(e),
        };
        let stack_slot = m.base_is_sp.then_some((self.sp_version, m.offset));
        Ok((
            addr,
            MemInfo {
                addr,
                bytes: m.bytes,
                is_store: m.is_store,
                region,
                hint: m.hint,
                stack_slot,
            },
        ))
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` when the machine has already halted.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] for malformed programs (pc escape, misaligned
    /// or unmapped access, unmatched return). After an error the machine
    /// state is unchanged except that it is marked halted.
    pub fn step(&mut self) -> Result<Option<DynInst>, VmError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let instr = match self.program.get(pc) {
            Some(i) => i,
            None => {
                self.halted = true;
                return Err(VmError::PcOutOfRange { pc });
            }
        };

        let mut next_pc = pc + 1;
        let mut mem: Option<MemInfo> = None;

        macro_rules! fail {
            ($e:expr) => {{
                self.halted = true;
                return Err($e);
            }};
        }

        match instr {
            Instr::Nop => {}
            Instr::Halt => self.halted = true,
            Instr::Alu { op, rd, rs, rt } => {
                let v = op.eval(self.gpr(rs), self.gpr(rt));
                self.set_gpr(rd, v);
            }
            Instr::AluImm { op, rd, rs, imm } => {
                let v = op.eval(self.gpr(rs), imm);
                self.set_gpr(rd, v);
            }
            Instr::LoadImm { rd, imm } => self.set_gpr(rd, imm),
            Instr::Fpu { op, fd, fs, ft } => {
                let v = op.eval(self.fpr(fs), self.fpr(ft));
                self.set_fpr(fd, v);
            }
            Instr::FpCmp { cond, rd, fs, ft } => {
                let v = cond.eval(self.fpr(fs), self.fpr(ft)) as i32;
                self.set_gpr(rd, v);
            }
            Instr::IntToFp { fd, rs } => {
                let v = self.gpr(rs) as f64;
                self.set_fpr(fd, v);
            }
            Instr::FpToInt { rd, fs } => {
                let v = self.fpr(fs) as i32; // saturating in Rust
                self.set_gpr(rd, v);
            }
            Instr::Load {
                rd,
                base,
                offset,
                width,
                hint,
            } => match self.mem_info(pc, &MemOp::new(base, offset, width.bytes(), hint, false)) {
                Ok((addr, info)) => {
                    let v = match width {
                        MemWidth::Byte => self.mem.read_u8(addr) as i8 as i32,
                        MemWidth::Half => self.mem.read_u16(addr) as i16 as i32,
                        MemWidth::Word => self.mem.read_u32(addr) as i32,
                    };
                    self.set_gpr(rd, v);
                    mem = Some(info);
                }
                Err(e) => fail!(e),
            },
            Instr::Store {
                rs,
                base,
                offset,
                width,
                hint,
            } => match self.mem_info(pc, &MemOp::new(base, offset, width.bytes(), hint, true)) {
                Ok((addr, info)) => {
                    let v = self.gpr(rs);
                    match width {
                        MemWidth::Byte => self.mem.write_u8(addr, v as u8),
                        MemWidth::Half => self.mem.write_u16(addr, v as u16),
                        MemWidth::Word => self.mem.write_u32(addr, v as u32),
                    }
                    mem = Some(info);
                }
                Err(e) => fail!(e),
            },
            Instr::FLoad {
                fd,
                base,
                offset,
                hint,
            } => match self.mem_info(pc, &MemOp::new(base, offset, 8, hint, false)) {
                Ok((addr, info)) => {
                    let v = self.mem.read_f64(addr);
                    self.set_fpr(fd, v);
                    mem = Some(info);
                }
                Err(e) => fail!(e),
            },
            Instr::FStore {
                fs,
                base,
                offset,
                hint,
            } => match self.mem_info(pc, &MemOp::new(base, offset, 8, hint, true)) {
                Ok((addr, info)) => {
                    let v = self.fpr(fs);
                    self.mem.write_f64(addr, v);
                    mem = Some(info);
                }
                Err(e) => fail!(e),
            },
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                if cond.eval(self.gpr(rs), self.gpr(rt)) {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Call { target } => {
                self.set_gpr(Gpr::RA, (pc + 1) as i32);
                next_pc = target;
                self.call_depth += 1;
                self.max_call_depth = self.max_call_depth.max(self.call_depth);
            }
            Instr::CallReg { rs } => {
                let target = self.gpr(rs) as u32;
                self.set_gpr(Gpr::RA, (pc + 1) as i32);
                next_pc = target;
                self.call_depth += 1;
                self.max_call_depth = self.max_call_depth.max(self.call_depth);
            }
            Instr::Ret => {
                if self.call_depth == 0 {
                    fail!(VmError::ReturnWithoutCall { pc });
                }
                next_pc = self.gpr(Gpr::RA) as u32;
                self.call_depth -= 1;
            }
        }

        // A *taken* control transfer out of the program image faults at
        // the transfer itself (fetching the target would decode garbage).
        // Sequential fall-through past the last instruction stays lazy —
        // it faults as `PcOutOfRange` on the next step.
        if !self.halted && next_pc != pc + 1 && self.program.get(next_pc).is_none() {
            self.halted = true;
            return Err(VmError::IllegalTarget {
                pc,
                target: next_pc,
            });
        }

        if !self.halted || matches!(instr, Instr::Halt) {
            self.pc = next_pc;
        }
        let d = DynInst {
            seq: self.seq,
            pc,
            instr,
            next_pc,
            mem,
        };
        self.seq += 1;
        Ok(Some(d))
    }

    /// Runs until `Halt` or until `max_instructions` have executed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`] encountered.
    pub fn run(&mut self, max_instructions: u64) -> Result<RunSummary, VmError> {
        let mut executed = 0;
        while executed < max_instructions {
            match self.step()? {
                Some(_) => executed += 1,
                None => break,
            }
        }
        Ok(RunSummary {
            executed,
            halted: self.halted,
        })
    }

    /// Fast-forwards exactly `n` instructions (or to `Halt`, whichever
    /// comes first) at translation-cache speed, stopping *precisely* at
    /// the instruction boundary.
    ///
    /// This is the warmup mode of sampled simulation: unlike a plain
    /// [`Vm::step_block`] loop — which commits whole blocks and
    /// overshoots the budget by up to a block — this runs blocks only
    /// while a full block is guaranteed to fit and single-steps the
    /// tail, so `instructions_executed()` afterwards equals the start
    /// value plus `n` exactly (unless the program halts or faults
    /// earlier). A detailed window can therefore start at a precise
    /// instruction index, and a checkpoint taken here is at a precise
    /// content address.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`]; instructions before the fault
    /// have committed, the machine is halted at the faulting pc. A fault
    /// that lies *beyond* the budget never executes.
    pub fn fast_forward(&mut self, n: u64) -> Result<RunSummary, VmError> {
        self.fast_forward_observed(n, |_| {})
    }

    /// [`Vm::fast_forward`] with an observer called on every executed
    /// instruction, in architectural order — the hook functional cache
    /// warmup hangs off (the observer sees the identical [`DynInst`]
    /// stream the interpreter would emit).
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`]; instructions before the fault
    /// have been observed and committed.
    pub fn fast_forward_observed(
        &mut self,
        n: u64,
        mut observe: impl FnMut(&DynInst),
    ) -> Result<RunSummary, VmError> {
        let start = self.seq;
        let target = start.saturating_add(n);
        // A block emits at most MAX_BLOCK_OPS straight-line ops plus one
        // terminator, so whole-block dispatch is safe while that worst
        // case still fits under the budget.
        let safe = MAX_BLOCK_OPS as u64 + 1;
        let mut buf: Vec<DynInst> = Vec::with_capacity(safe as usize);
        while !self.halted && self.seq + safe <= target {
            buf.clear();
            let err = self.step_block(&mut buf);
            for d in &buf {
                observe(d);
            }
            if let Some(e) = err {
                return Err(e);
            }
        }
        while !self.halted && self.seq < target {
            match self.step()? {
                Some(d) => observe(&d),
                None => break,
            }
        }
        Ok(RunSummary {
            executed: self.seq - start,
            halted: self.halted,
        })
    }

    /// Captures a serializable [`Checkpoint`] of the architectural state,
    /// content-addressed by `(program_hash, instructions executed,
    /// config_hash)`. The two hashes are caller-provided (`dda-vm` does
    /// not define the canonical program/config fingerprints); restoring
    /// through [`Vm::restore`] yields a machine bit-identical to this
    /// one — registers, memory pages, `sp_version`, call depths and
    /// translation-cache state (counters included) all round-trip.
    pub fn checkpoint(&self, program_hash: u64, config_hash: u64) -> Checkpoint {
        Checkpoint {
            key: CheckpointKey {
                program_hash,
                inst_index: self.seq,
                config_hash,
            },
            pc: self.pc,
            halted: self.halted,
            call_depth: self.call_depth,
            max_call_depth: self.max_call_depth,
            block_hint: self.block_hint,
            sp_version: self.sp_version,
            seq: self.seq,
            gpr: self.gpr,
            fpr_bits: core::array::from_fn(|i| self.fpr[i].to_bits()),
            pages: self
                .mem
                .resident_page_bytes()
                .map(|(i, b)| (i, b.to_vec()))
                .collect(),
            tcache: self.tcache.as_ref().map(|tc| TCacheSnapshot {
                recipe: tc.recipe(),
                stats: tc.stats,
            }),
            cache_tags: None,
        }
    }

    /// Rebuilds a machine from a [`Checkpoint`] over `program`.
    ///
    /// The caller is responsible for passing the *same* program the
    /// checkpoint was taken from (the content-addressed store keys on
    /// the program hash); this function validates that the snapshot
    /// structurally fits the image and rebuilds the translation cache by
    /// re-decoding the recorded block starts, which is deterministic, so
    /// the restored machine's future execution — dynamic stream, cache
    /// counters, inline-cache behaviour — is bit-identical to the
    /// original's.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when a page index or a
    /// translation-cache entry does not fit `program`.
    pub fn restore(program: Arc<Program>, ck: &Checkpoint) -> Result<Vm, SnapshotError> {
        let mut mem = SparseMemory::new();
        for (index, bytes) in &ck.pages {
            if !mem.install_page(*index, bytes) {
                return Err(SnapshotError::Corrupt("page does not fit memory"));
            }
        }
        let tcache = match &ck.tcache {
            None => None,
            Some(snap) => match TCache::rebuild(&program, &snap.recipe, snap.stats) {
                Some(tc) => Some(Box::new(tc)),
                None => return Err(SnapshotError::Corrupt("tcache recipe does not fit program")),
            },
        };
        if let Some(tc) = &tcache {
            let n = tc.blocks.len() as u32;
            if ck.block_hint != NO_BLOCK && ck.block_hint >= n {
                return Err(SnapshotError::Corrupt("block hint out of range"));
            }
        } else if ck.block_hint != NO_BLOCK {
            return Err(SnapshotError::Corrupt("block hint without a tcache"));
        }
        Ok(Vm {
            program,
            pc: ck.pc,
            gpr: ck.gpr,
            fpr: core::array::from_fn(|i| f64::from_bits(ck.fpr_bits[i])),
            mem,
            sp_version: ck.sp_version,
            seq: ck.seq,
            call_depth: ck.call_depth,
            max_call_depth: ck.max_call_depth,
            halted: ck.halted,
            tcache,
            block_hint: ck.block_hint,
        })
    }

    /// Executes one basic block through the translation cache, appending
    /// the emitted [`DynInst`]s to `out`.
    ///
    /// This is the batched equivalent of calling [`Vm::step`] in a loop:
    /// the concatenation of `out` across calls is bit-identical to the
    /// interpreter's stream (sequence numbers, `next_pc`, [`MemInfo`]
    /// stack-slot tags included). Each call appends at least one
    /// instruction unless the machine is already halted (`out` untouched,
    /// returns `None`) or the block faults.
    ///
    /// On a fault the error is *returned* (not `Err` — the signature
    /// deliberately differs from `step` so callers handle the partial
    /// batch): instructions before the faulting micro-op are already in
    /// `out`, committed exactly as the interpreter would have committed
    /// them, and the machine is halted at the faulting pc with no effects
    /// of the faulting instruction applied — the same "state unchanged
    /// except halted" contract as [`Vm::step`].
    pub fn step_block(&mut self, out: &mut Vec<DynInst>) -> Option<VmError> {
        if self.halted {
            return None;
        }
        // Take the cache out of `self` so the replay loop can borrow the
        // machine state and the cache's op array independently.
        let mut tc = match self.tcache.take() {
            Some(tc) => tc,
            None => Box::new(TCache::new(&self.program)),
        };
        let err = self.replay_block(&mut tc, out);
        self.tcache = Some(tc);
        err
    }

    /// Translation-cache counters (all zero until the first
    /// [`Vm::step_block`] call).
    pub fn tcache_stats(&self) -> TCacheStats {
        match self.tcache.as_ref() {
            Some(tc) => tc.stats,
            None => TCacheStats::default(),
        }
    }

    fn replay_block(&mut self, tc: &mut TCache, out: &mut Vec<DynInst>) -> Option<VmError> {
        let pc = self.pc;
        if pc as usize >= self.program.len() {
            self.halted = true;
            self.block_hint = NO_BLOCK;
            return Some(VmError::PcOutOfRange { pc });
        }
        // Resolve the current block: the hint chained from the previous
        // block's successor link usually short-circuits the pc map.
        let hint = self.block_hint;
        let id = if hint != NO_BLOCK && tc.blocks[hint as usize].start == pc {
            tc.stats.inline_hits += 1;
            hint
        } else {
            tc.block_at(&self.program, pc)
        };
        // Blocks are `Copy`: snapshot the header so the micro-op walk
        // only borrows the flat op array.
        let blk = tc.blocks[id as usize];
        tc.stats.blocks_replayed += 1;

        // Straight-line micro-ops. `self.pc` tracks the fetch pc op by
        // op, so a faulting op leaves the machine exactly where the
        // interpreter would (pc at the fault, prior effects committed).
        let (ops_start, ops_len) = blk.ops;
        for idx in ops_start..ops_start + ops_len {
            let op = tc.ops[idx as usize];
            match self.exec_micro(&op) {
                Ok(mem) => {
                    out.push(DynInst {
                        seq: self.seq,
                        pc: op.pc,
                        instr: op.instr,
                        next_pc: op.pc + 1,
                        mem,
                    });
                    self.seq += 1;
                    self.pc = op.pc + 1;
                }
                Err(e) => {
                    self.halted = true;
                    self.block_hint = NO_BLOCK;
                    tc.stats.ops_replayed += (idx - ops_start) as u64;
                    return Some(e);
                }
            }
        }
        tc.stats.ops_replayed += ops_len as u64;

        // The terminator. Effect ordering per variant mirrors `step`
        // exactly — in particular `Call`/`CallReg` write `$ra` and bump
        // the call depth *before* the illegal-target check fires, and
        // `Ret` decrements the depth before it.
        let tpc = blk.term_pc;
        macro_rules! fault {
            ($e:expr) => {{
                self.halted = true;
                self.block_hint = NO_BLOCK;
                return Some($e);
            }};
        }
        let (next_pc, succ_slot) = match blk.term {
            Terminator::FallThrough => {
                // No instruction: the block ended at a static leader (or
                // the length cap); chain straight to the successor.
                self.pc = tpc;
                self.resolve_succ(tc, id, 0, tpc);
                return None;
            }
            Terminator::Branch {
                f,
                rs,
                rt,
                target,
                taken_ok,
            } => {
                if f(self.gpr(rs), self.gpr(rt)) {
                    if target != tpc + 1 && !taken_ok {
                        fault!(VmError::IllegalTarget { pc: tpc, target });
                    }
                    (target, 1)
                } else {
                    (tpc + 1, 0)
                }
            }
            Terminator::Jump { target, ok } => {
                if target != tpc + 1 && !ok {
                    fault!(VmError::IllegalTarget { pc: tpc, target });
                }
                (target, 0)
            }
            Terminator::Call { target, ok } => {
                self.set_gpr(Gpr::RA, (tpc + 1) as i32);
                self.call_depth += 1;
                self.max_call_depth = self.max_call_depth.max(self.call_depth);
                if target != tpc + 1 && !ok {
                    fault!(VmError::IllegalTarget { pc: tpc, target });
                }
                (target, 0)
            }
            Terminator::CallReg { rs } => {
                let target = self.gpr(rs) as u32;
                self.set_gpr(Gpr::RA, (tpc + 1) as i32);
                self.call_depth += 1;
                self.max_call_depth = self.max_call_depth.max(self.call_depth);
                if target != tpc + 1 && self.program.get(target).is_none() {
                    fault!(VmError::IllegalTarget { pc: tpc, target });
                }
                (target, 2)
            }
            Terminator::Ret => {
                if self.call_depth == 0 {
                    fault!(VmError::ReturnWithoutCall { pc: tpc });
                }
                let target = self.gpr(Gpr::RA) as u32;
                self.call_depth -= 1;
                if target != tpc + 1 && self.program.get(target).is_none() {
                    fault!(VmError::IllegalTarget { pc: tpc, target });
                }
                (target, 2)
            }
            Terminator::Halt => {
                self.halted = true;
                self.block_hint = NO_BLOCK;
                out.push(DynInst {
                    seq: self.seq,
                    pc: tpc,
                    instr: blk.term_instr,
                    next_pc: tpc + 1,
                    mem: None,
                });
                self.seq += 1;
                self.pc = tpc + 1;
                tc.stats.ops_replayed += 1;
                return None;
            }
        };
        out.push(DynInst {
            seq: self.seq,
            pc: tpc,
            instr: blk.term_instr,
            next_pc,
            mem: None,
        });
        self.seq += 1;
        self.pc = next_pc;
        tc.stats.ops_replayed += 1;
        if succ_slot == 2 {
            self.resolve_dyn_succ(tc, id, next_pc);
        } else {
            self.resolve_succ(tc, id, succ_slot, next_pc);
        }
        None
    }

    /// Resolves a static successor link (`succ[slot]`), filling the
    /// inline cache on first use and updating the machine's block hint.
    fn resolve_succ(&mut self, tc: &mut TCache, id: u32, slot: usize, next_pc: u32) {
        let cached = tc.blocks[id as usize].succ[slot];
        if cached != NO_BLOCK {
            tc.stats.inline_hits += 1;
            self.block_hint = cached;
        } else if (next_pc as usize) < self.program.len() {
            let nid = tc.block_at(&self.program, next_pc);
            tc.blocks[id as usize].succ[slot] = nid;
            self.block_hint = nid;
        } else {
            // Sequential escape off the image: stays lazy, the next
            // `step_block` raises `PcOutOfRange` like the interpreter.
            self.block_hint = NO_BLOCK;
        }
    }

    /// Resolves a dynamic successor (`ret`, indirect call) through the
    /// block's monomorphic `(target, id)` inline cache.
    fn resolve_dyn_succ(&mut self, tc: &mut TCache, id: u32, next_pc: u32) {
        let (dpc, did) = tc.blocks[id as usize].dyn_succ;
        if did != NO_BLOCK && dpc == next_pc {
            tc.stats.inline_hits += 1;
            self.block_hint = did;
        } else if (next_pc as usize) < self.program.len() {
            let nid = tc.block_at(&self.program, next_pc);
            tc.blocks[id as usize].dyn_succ = (next_pc, nid);
            self.block_hint = nid;
        } else {
            self.block_hint = NO_BLOCK;
        }
    }

    /// Executes one straight-line micro-op; on `Err` no architectural
    /// state has changed (access checks run before any write).
    #[inline]
    fn exec_micro(&mut self, op: &MicroOp) -> Result<Option<MemInfo>, VmError> {
        match op.kind {
            OpKind::Nop => Ok(None),
            OpKind::Alu { f, rd, rs, rt } => {
                let v = f(self.gpr(rs), self.gpr(rt));
                self.set_gpr(rd, v);
                Ok(None)
            }
            OpKind::AluImm { f, rd, rs, imm } => {
                let v = f(self.gpr(rs), imm);
                self.set_gpr(rd, v);
                Ok(None)
            }
            OpKind::LoadImm { rd, imm } => {
                self.set_gpr(rd, imm);
                Ok(None)
            }
            OpKind::Fpu { f, fd, fs, ft } => {
                let v = f(self.fpr(fs), self.fpr(ft));
                self.set_fpr(fd, v);
                Ok(None)
            }
            OpKind::FpCmp { f, rd, fs, ft } => {
                let v = f(self.fpr(fs), self.fpr(ft)) as i32;
                self.set_gpr(rd, v);
                Ok(None)
            }
            OpKind::IntToFp { fd, rs } => {
                let v = self.gpr(rs) as f64;
                self.set_fpr(fd, v);
                Ok(None)
            }
            OpKind::FpToInt { rd, fs } => {
                let v = self.fpr(fs) as i32; // saturating in Rust
                self.set_gpr(rd, v);
                Ok(None)
            }
            OpKind::Load { rd, m, width } => {
                let (addr, info) = self.mem_info(op.pc, &m)?;
                let v = match width {
                    MemWidth::Byte => self.mem.read_u8(addr) as i8 as i32,
                    MemWidth::Half => self.mem.read_u16(addr) as i16 as i32,
                    MemWidth::Word => self.mem.read_u32(addr) as i32,
                };
                self.set_gpr(rd, v);
                Ok(Some(info))
            }
            OpKind::Store { rs, m, width } => {
                let (addr, info) = self.mem_info(op.pc, &m)?;
                let v = self.gpr(rs);
                match width {
                    MemWidth::Byte => self.mem.write_u8(addr, v as u8),
                    MemWidth::Half => self.mem.write_u16(addr, v as u16),
                    MemWidth::Word => self.mem.write_u32(addr, v as u32),
                }
                Ok(Some(info))
            }
            OpKind::FLoad { fd, m } => {
                let (addr, info) = self.mem_info(op.pc, &m)?;
                let v = self.mem.read_f64(addr);
                self.set_fpr(fd, v);
                Ok(Some(info))
            }
            OpKind::FStore { fs, m } => {
                let (addr, info) = self.mem_info(op.pc, &m)?;
                let v = self.fpr(fs);
                self.mem.write_f64(addr, v);
                Ok(Some(info))
            }
        }
    }
}

/// An iterator over the remaining dynamic instruction stream of a [`Vm`].
///
/// Panics on [`VmError`] — by the time a stream is consumed by the timing
/// model the program is expected to be well-formed (generator-produced
/// programs are validated by their tests).
#[derive(Debug)]
pub struct Stream<'a> {
    vm: &'a mut Vm,
}

impl Iterator for Stream<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        match self.vm.step() {
            Ok(d) => d,
            Err(e) => panic!("functional execution error in dynamic stream: {e}"),
        }
    }
}

impl Vm {
    /// Iterate the remaining dynamic stream.
    ///
    /// # Panics
    ///
    /// The iterator panics if execution raises a [`VmError`].
    pub fn stream(&mut self) -> Stream<'_> {
        Stream { vm: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_isa::{AluOp, BranchCond};
    use dda_program::{FunctionBuilder, ProgramBuilder};

    fn build(funcs: Vec<FunctionBuilder>) -> Program {
        let mut b = ProgramBuilder::new();
        for f in funcs {
            b.add_function(f);
        }
        b.build().unwrap()
    }

    fn run_to_halt(p: Program) -> Vm {
        let mut vm = Vm::new(p);
        let s = vm.run(1_000_000).unwrap();
        assert!(s.halted, "program did not halt");
        vm
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 6);
        f.load_imm(Gpr::T1, 7);
        f.alu(AluOp::Mul, Gpr::V0, Gpr::T0, Gpr::T1);
        f.halt();
        let vm = run_to_halt(build(vec![f]));
        assert_eq!(vm.gpr(Gpr::V0), 42);
        assert_eq!(vm.instructions_executed(), 4);
    }

    #[test]
    fn loop_with_branch() {
        // sum = 0; for i in 1..=10 { sum += i }
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 10); // i
        f.load_imm(Gpr::T1, 0); // sum
        let top = f.new_label();
        f.bind(top);
        f.alu(AluOp::Add, Gpr::T1, Gpr::T1, Gpr::T0);
        f.addi(Gpr::T0, Gpr::T0, -1);
        f.branch(BranchCond::Gt, Gpr::T0, Gpr::ZERO, top);
        f.halt();
        let vm = run_to_halt(build(vec![f]));
        assert_eq!(vm.gpr(Gpr::T1), 55);
    }

    #[test]
    fn recursion_factorial() {
        // fact(n): if n <= 1 return 1 else return n * fact(n-1)
        // a0 = n, result in v0; saves ra and a0 on the stack.
        let mut main = FunctionBuilder::new("main");
        main.load_imm(Gpr::A0, 6);
        main.call("fact");
        main.halt();

        let mut fact = FunctionBuilder::with_frame("fact", 8);
        let recurse = fact.new_label();
        fact.load_imm(Gpr::T0, 1);
        fact.branch(BranchCond::Gt, Gpr::A0, Gpr::T0, recurse);
        fact.load_imm(Gpr::V0, 1);
        fact.ret();
        fact.bind(recurse);
        fact.addi(Gpr::SP, Gpr::SP, -8);
        fact.store_local(Gpr::RA, 0);
        fact.store_local(Gpr::A0, 4);
        fact.addi(Gpr::A0, Gpr::A0, -1);
        fact.call("fact");
        fact.load_local(Gpr::RA, 0);
        fact.load_local(Gpr::A0, 4);
        fact.alu(AluOp::Mul, Gpr::V0, Gpr::V0, Gpr::A0);
        fact.addi(Gpr::SP, Gpr::SP, 8);
        fact.ret();

        let vm = run_to_halt(build(vec![main, fact]));
        assert_eq!(vm.gpr(Gpr::V0), 720);
        assert_eq!(vm.call_depth(), 0);
        assert_eq!(vm.max_call_depth(), 6);
        // $sp fully restored.
        assert_eq!(vm.gpr(Gpr::SP) as u32, vm.program().layout().stack_base());
    }

    #[test]
    fn sp_version_increments_on_sp_writes() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.addi(Gpr::T0, Gpr::T0, 1); // unrelated
        f.addi(Gpr::SP, Gpr::SP, 16);
        f.halt();
        let vm = run_to_halt(build(vec![f]));
        assert_eq!(vm.sp_version(), 2);
    }

    #[test]
    fn mem_info_classifies_regions_and_slots() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.store_local(Gpr::T0, 4);
        f.load(Gpr::T1, Gpr::GP, 8, MemWidth::Word, StreamHint::NonLocal);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        let recs: Vec<DynInst> = vm.stream().collect();
        let st = recs[1].mem.unwrap();
        assert!(st.is_store && st.is_local());
        assert_eq!(st.region, MemRegion::Stack);
        assert_eq!(st.stack_slot, Some((1, 4)));
        let ld = recs[2].mem.unwrap();
        assert!(!ld.is_store && !ld.is_local());
        assert_eq!(ld.region, MemRegion::Global);
        assert_eq!(ld.stack_slot, None);
    }

    #[test]
    fn store_load_round_trip_through_memory() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        f.load_imm(Gpr::T0, -123456);
        f.store_local(Gpr::T0, 12);
        f.load_local(Gpr::V0, 12);
        f.halt();
        let vm = run_to_halt(build(vec![f]));
        assert_eq!(vm.gpr(Gpr::V0), -123456);
    }

    #[test]
    fn byte_and_half_sign_extension() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.load_imm(Gpr::T0, 0x1ff);
        f.store(Gpr::T0, Gpr::SP, 0, MemWidth::Byte, StreamHint::Local);
        f.load(Gpr::V0, Gpr::SP, 0, MemWidth::Byte, StreamHint::Local);
        f.load_imm(Gpr::T1, -2);
        f.store(Gpr::T1, Gpr::SP, 4, MemWidth::Half, StreamHint::Local);
        f.load(Gpr::V1, Gpr::SP, 4, MemWidth::Half, StreamHint::Local);
        f.halt();
        let vm = run_to_halt(build(vec![f]));
        assert_eq!(vm.gpr(Gpr::V0), -1); // 0xff sign-extends
        assert_eq!(vm.gpr(Gpr::V1), -2);
    }

    #[test]
    fn fp_ops_and_memory() {
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 3);
        f.int_to_fp(Fpr::F0, Gpr::T0);
        f.fpu(dda_isa::FpuOp::Mul, Fpr::new(1), Fpr::F0, Fpr::F0);
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.fstore(Fpr::new(1), Gpr::SP, 0, StreamHint::Local);
        f.fload(Fpr::new(2), Gpr::SP, 0, StreamHint::Local);
        f.fp_to_int(Gpr::V0, Fpr::new(2));
        f.halt();
        let vm = run_to_halt(build(vec![f]));
        assert_eq!(vm.gpr(Gpr::V0), 9);
        assert_eq!(vm.fpr(Fpr::new(2)), 9.0);
    }

    #[test]
    fn misaligned_access_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        f.load(Gpr::T0, Gpr::GP, 2, MemWidth::Word, StreamHint::NonLocal);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        let err = vm.run(10).unwrap_err();
        assert!(matches!(err, VmError::Misaligned { bytes: 4, .. }));
        assert!(vm.is_halted());
    }

    #[test]
    fn unmapped_access_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 0x40);
        f.load(Gpr::T1, Gpr::T0, 0, MemWidth::Word, StreamHint::Unknown);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        assert!(matches!(
            vm.run(10),
            Err(VmError::OutOfRegion { addr: 0x40, .. })
        ));
    }

    #[test]
    fn sp_relative_overflow_is_a_stack_overflow() {
        use dda_isa::AluOp;
        let mut f = FunctionBuilder::new("main");
        // Drop $sp just past the 4 MB stack region and store there.
        f.load_imm(Gpr::T0, (4 << 20) + 16);
        f.alu(AluOp::Sub, Gpr::SP, Gpr::SP, Gpr::T0);
        f.store_local(Gpr::T0, 0);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        let limit = vm.program().layout().stack_limit();
        let err = vm.run(10).unwrap_err();
        assert_eq!(
            err,
            VmError::StackOverflow {
                pc: 2,
                addr: limit - 16,
                limit
            }
        );
        assert!(vm.is_halted());
    }

    #[test]
    fn guard_band_access_is_a_stack_overflow_even_without_sp() {
        let mut f = FunctionBuilder::new("main");
        let limit = MemoryLayoutProbe::limit();
        f.load_imm(Gpr::T0, (limit - 8) as i32);
        f.load(Gpr::T1, Gpr::T0, 0, MemWidth::Word, StreamHint::Unknown);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        assert!(matches!(vm.run(10), Err(VmError::StackOverflow { .. })));
    }

    /// The standard layout's stack limit, for building hostile addresses.
    struct MemoryLayoutProbe;
    impl MemoryLayoutProbe {
        fn limit() -> u32 {
            dda_program::MemoryLayout::standard().stack_limit()
        }
    }

    #[test]
    fn indirect_call_to_garbage_is_an_illegal_target() {
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 9999);
        f.call_reg(Gpr::T0);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        assert_eq!(
            vm.run(10),
            Err(VmError::IllegalTarget {
                pc: 1,
                target: 9999
            })
        );
        assert!(vm.is_halted());
    }

    #[test]
    fn return_to_clobbered_ra_is_an_illegal_target() {
        let mut main = FunctionBuilder::new("main");
        main.call("f");
        main.halt();
        let mut f = FunctionBuilder::new("f");
        f.load_imm(Gpr::RA, 1_000_000);
        f.ret();
        let mut vm = Vm::new(build(vec![main, f]));
        assert!(matches!(
            vm.run(10),
            Err(VmError::IllegalTarget {
                target: 1_000_000,
                ..
            })
        ));
    }

    #[test]
    fn return_without_call_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        f.ret();
        let mut vm = Vm::new(build(vec![f]));
        assert!(matches!(
            vm.run(10),
            Err(VmError::ReturnWithoutCall { pc: 0 })
        ));
    }

    #[test]
    fn pc_escape_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        f.nop(); // falls off the end
        let mut vm = Vm::new(build(vec![f]));
        assert!(matches!(vm.run(10), Err(VmError::PcOutOfRange { pc: 1 })));
    }

    #[test]
    fn halted_machine_steps_to_none() {
        let mut f = FunctionBuilder::new("main");
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        assert!(vm.step().unwrap().is_some());
        assert!(vm.step().unwrap().is_none());
        assert!(vm.is_halted());
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut f = FunctionBuilder::new("main");
        let top = f.new_label();
        f.bind(top);
        f.jump(top);
        let mut vm = Vm::new(build(vec![f]));
        let s = vm.run(1000).unwrap();
        assert_eq!(s.executed, 1000);
        assert!(!s.halted);
    }

    #[test]
    fn indirect_call_via_register() {
        let mut main = FunctionBuilder::new("main");
        main.load_imm(Gpr::T0, 3); // pc of "target" resolved below
        main.call_reg(Gpr::T0);
        main.halt();
        let mut target = FunctionBuilder::new("target");
        target.load_imm(Gpr::V0, 99);
        target.ret();
        let p = build(vec![main, target]);
        assert_eq!(p.symbol("target"), Some(3));
        let vm = run_to_halt(p);
        assert_eq!(vm.gpr(Gpr::V0), 99);
    }

    #[test]
    fn cloned_vm_is_a_checkpoint() {
        // Clone mid-run, then both copies must produce identical streams.
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        for i in 0..50 {
            f.load_imm(Gpr::T0, i);
            f.store_local(Gpr::T0, (i % 8) * 4);
            f.load_local(Gpr::T1, (i % 8) * 4);
        }
        f.addi(Gpr::SP, Gpr::SP, 32);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        vm.run(40).unwrap();
        let mut checkpoint = vm.clone();
        let rest_a: Vec<DynInst> = vm.stream().collect();
        let rest_b: Vec<DynInst> = checkpoint.stream().collect();
        assert!(!rest_a.is_empty());
        assert_eq!(rest_a, rest_b);
    }

    /// A program with loops, recursion, stack traffic and FP work — the
    /// state-coverage workhorse for the snapshot tests below.
    fn busy_program() -> Program {
        let mut main = FunctionBuilder::new("main");
        main.addi(Gpr::SP, Gpr::SP, -64);
        let top = main.new_label();
        main.load_imm(Gpr::T2, 20); // outer trip count
        main.bind(top);
        main.store_local(Gpr::T2, 8);
        main.load_imm(Gpr::A0, 5);
        main.call("fact");
        main.load_local(Gpr::T2, 8);
        main.int_to_fp(Fpr::F0, Gpr::V0);
        main.fpu(dda_isa::FpuOp::Add, Fpr::new(1), Fpr::new(1), Fpr::F0);
        main.fstore(Fpr::new(1), Gpr::SP, 16, StreamHint::Local);
        main.store(Gpr::V0, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
        main.addi(Gpr::T2, Gpr::T2, -1);
        main.branch(BranchCond::Gt, Gpr::T2, Gpr::ZERO, top);
        main.addi(Gpr::SP, Gpr::SP, 64);
        main.halt();

        let mut fact = FunctionBuilder::with_frame("fact", 8);
        let recurse = fact.new_label();
        fact.load_imm(Gpr::T0, 1);
        fact.branch(BranchCond::Gt, Gpr::A0, Gpr::T0, recurse);
        fact.load_imm(Gpr::V0, 1);
        fact.ret();
        fact.bind(recurse);
        fact.addi(Gpr::SP, Gpr::SP, -8);
        fact.store_local(Gpr::RA, 0);
        fact.store_local(Gpr::A0, 4);
        fact.addi(Gpr::A0, Gpr::A0, -1);
        fact.call("fact");
        fact.load_local(Gpr::RA, 0);
        fact.load_local(Gpr::A0, 4);
        fact.alu(AluOp::Mul, Gpr::V0, Gpr::V0, Gpr::A0);
        fact.addi(Gpr::SP, Gpr::SP, 8);
        fact.ret();

        build(vec![main, fact])
    }

    #[test]
    fn fast_forward_stops_exactly_on_the_boundary() {
        let p = Arc::new(busy_program());
        for n in [0u64, 1, 7, 63, 64, 65, 100, 130] {
            let mut vm = Vm::new(Arc::clone(&p));
            vm.fast_forward(n).unwrap();
            assert_eq!(vm.instructions_executed(), n, "budget {n} overshot");
            // And the post-stop stream matches a pure interpreter that
            // stepped the same distance.
            let mut interp = Vm::new(Arc::clone(&p));
            interp.run(n).unwrap();
            let a: Vec<DynInst> = vm.stream().take(20).collect();
            let b: Vec<DynInst> = interp.stream().take(20).collect();
            assert_eq!(a, b, "streams diverge after ff({n})");
        }
    }

    #[test]
    fn fast_forward_observer_sees_the_interpreter_stream() {
        let p = Arc::new(busy_program());
        let mut vm = Vm::new(Arc::clone(&p));
        let mut seen = Vec::new();
        vm.fast_forward_observed(150, |d| seen.push(*d)).unwrap();
        let mut interp = Vm::new(p);
        let expect: Vec<DynInst> = std::iter::from_fn(|| interp.step().unwrap())
            .take(150)
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn fast_forward_stops_at_halt_and_propagates_faults() {
        let p = Arc::new(busy_program());
        let mut vm = Vm::new(Arc::clone(&p));
        let s = vm.fast_forward(u64::MAX / 2).unwrap();
        assert!(s.halted);
        let mut interp = Vm::new(p);
        let full = interp.run(u64::MAX / 2).unwrap();
        assert_eq!(s.executed, full.executed);

        // A faulting program faults identically under fast-forward.
        let mut f = FunctionBuilder::new("main");
        f.nop();
        f.ret(); // return without call
        let prog = build(vec![f]);
        let mut vm = Vm::new(prog);
        assert_eq!(
            vm.fast_forward(10),
            Err(VmError::ReturnWithoutCall { pc: 1 })
        );
        assert!(vm.is_halted());
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let p = Arc::new(busy_program());
        let mut vm = Vm::new(Arc::clone(&p));
        vm.fast_forward(137).unwrap();
        let ck = vm.checkpoint(0x1111, 0x2222);
        assert_eq!(ck.key.inst_index, 137);

        // Serialize through bytes (the store path) and restore.
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        let mut restored = Vm::restore(Arc::clone(&p), &back).unwrap();

        // All the observable state matches...
        assert_eq!(restored.pc(), vm.pc());
        assert_eq!(restored.sp_version(), vm.sp_version());
        assert_eq!(restored.call_depth(), vm.call_depth());
        assert_eq!(restored.max_call_depth(), vm.max_call_depth());
        assert_eq!(restored.instructions_executed(), vm.instructions_executed());
        assert_eq!(restored.tcache_stats(), vm.tcache_stats());
        assert_eq!(
            restored.memory().resident_page_bytes().collect::<Vec<_>>(),
            vm.memory().resident_page_bytes().collect::<Vec<_>>()
        );
        // ...and so does the entire future: stream and cache counters.
        let a: Vec<DynInst> = vm.stream().collect();
        let b: Vec<DynInst> = restored.stream().collect();
        assert_eq!(a, b);
        let mut buf = Vec::new();
        let mut vm2 = Vm::restore(Arc::clone(&p), &back).unwrap();
        while vm2.step_block(&mut buf).is_none() && !vm2.is_halted() {}
        let mut cont = Vm::new(p);
        cont.fast_forward(137).unwrap();
        let mut buf2 = Vec::new();
        while cont.step_block(&mut buf2).is_none() && !cont.is_halted() {}
        assert_eq!(buf, buf2);
        assert_eq!(vm2.tcache_stats(), cont.tcache_stats());
    }

    #[test]
    fn restore_rejects_a_mismatched_program() {
        let p = Arc::new(busy_program());
        let mut vm = Vm::new(Arc::clone(&p));
        vm.fast_forward(100).unwrap();
        let ck = vm.checkpoint(1, 2);
        // A much shorter program cannot host the recipe's block starts.
        let mut f = FunctionBuilder::new("main");
        f.halt();
        let tiny = Arc::new(build(vec![f]));
        assert!(matches!(
            Vm::restore(tiny, &ck),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn checkpoint_without_tcache_restores_cleanly() {
        let p = Arc::new(busy_program());
        let mut vm = Vm::new(Arc::clone(&p));
        vm.run(50).unwrap(); // interpreter only — no tcache materialised
        let ck = vm.checkpoint(1, 2);
        assert!(!ck.has_tcache());
        let mut restored = Vm::restore(Arc::clone(&p), &ck).unwrap();
        let a: Vec<DynInst> = vm.stream().take(50).collect();
        let b: Vec<DynInst> = restored.stream().take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_iterator_ends_at_halt() {
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 1);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        assert_eq!(vm.stream().count(), 2);
        assert_eq!(vm.stream().count(), 0, "exhausted stream stays empty");
    }

    #[test]
    #[should_panic(expected = "functional execution error")]
    fn stream_iterator_panics_on_malformed_program() {
        let mut f = FunctionBuilder::new("main");
        f.ret(); // return without call
        let mut vm = Vm::new(build(vec![f]));
        let _ = vm.stream().count();
    }

    #[test]
    fn dyn_inst_sequence_and_next_pc() {
        let mut f = FunctionBuilder::new("main");
        let skip = f.new_label();
        f.load_imm(Gpr::T0, 1);
        f.bnez(Gpr::T0, skip); // taken
        f.nop(); // skipped
        f.bind(skip);
        f.halt();
        let mut vm = Vm::new(build(vec![f]));
        let recs: Vec<DynInst> = vm.stream().collect();
        assert_eq!(recs.len(), 3); // li, branch, halt — nop never executes
        assert_eq!(
            recs.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(recs[1].next_pc, 3); // branch taken over the nop
        assert_eq!(recs[2].pc, 3);
    }
}
