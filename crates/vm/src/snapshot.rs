//! Serializable architectural checkpoints.
//!
//! A [`Checkpoint`] captures everything [`crate::Vm::restore`] needs to
//! rebuild a machine that is *bit-identical* to the one it was taken
//! from: registers, the resident [`crate::SparseMemory`] pages,
//! `sp_version`, call depths, and — when the translation cache has been
//! used — the cache's reconstruction recipe (block starts, inline-cache
//! links, counters). Micro-ops are never serialized: block decoding is
//! deterministic, so the restore path re-decodes the same starts in the
//! same order and gets the identical cache back, function pointers
//! regenerated for the current process.
//!
//! Checkpoints are content-addressed by a [`CheckpointKey`] — the
//! `(program hash, instruction index, config hash)` triple — so a sweep
//! worker can ask "has anyone already fast-forwarded this program to
//! instruction N under this config?" and resume instead of re-simulating
//! the prefix. The key is stored inside the snapshot and checked by the
//! store layer; [`crate::Vm::restore`] itself only validates structure.
//!
//! The binary format is versioned (magic + version word) and built on
//! [`dda_stats::ByteWriter`] fixed-width little-endian framing. An
//! optional opaque cache-tag section rides along for `dda-mem`'s
//! hierarchy tag snapshot, kept opaque here so the VM crate stays
//! ignorant of cache geometry.

use dda_stats::{ByteReader, ByteWriter, CodecError};

use crate::tcache::{BlockRecipe, TCacheStats};

/// File magic: identifies a DDA checkpoint ("DDACKPT\0").
const MAGIC: &[u8; 8] = b"DDACKPT\0";
/// Current format version.
const VERSION: u32 = 1;
/// One serialized memory page (must match `SparseMemory`'s page size).
const PAGE_BYTES: usize = 4096;

/// The content address of a checkpoint: which program, how far into it,
/// and under which machine configuration the optional warm state was
/// gathered.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct CheckpointKey {
    /// Stable hash of the program image (e.g. `fnv1a64` of its listing).
    pub program_hash: u64,
    /// Architectural instruction index the snapshot was taken at.
    pub inst_index: u64,
    /// Stable hash of the machine configuration.
    pub config_hash: u64,
}

/// Error decoding or restoring a checkpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The input does not start with the checkpoint magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The input ended mid-field.
    Truncated(CodecError),
    /// A structurally invalid field (page index, block link, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            SnapshotError::Truncated(e) => write!(f, "truncated checkpoint: {e}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> SnapshotError {
        SnapshotError::Truncated(e)
    }
}

/// Serialized translation-cache state (reconstruction recipe + counters).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct TCacheSnapshot {
    pub recipe: Vec<BlockRecipe>,
    pub stats: TCacheStats,
}

/// A compact, versioned snapshot of one [`crate::Vm`]'s architectural
/// state, optionally carrying cache-tag warm state for the detailed
/// model.
#[derive(Clone, PartialEq, Debug)]
pub struct Checkpoint {
    /// Content address of this snapshot.
    pub key: CheckpointKey,
    /// Program counter.
    pub pc: u32,
    /// Whether the machine had halted.
    pub halted: bool,
    /// Current call depth.
    pub call_depth: u32,
    /// Deepest call depth reached.
    pub max_call_depth: u32,
    /// Chained block hint (an id into the serialized cache, or
    /// `u32::MAX` for none).
    pub block_hint: u32,
    /// `$sp` write counter.
    pub sp_version: u64,
    /// Instructions executed (always equals `key.inst_index`).
    pub seq: u64,
    /// General-purpose registers.
    pub gpr: [i32; 32],
    /// Floating-point registers as IEEE-754 bit patterns (NaN payloads
    /// survive the round trip).
    pub fpr_bits: [u64; 32],
    /// Resident memory pages as `(page index, 4096 bytes)` in ascending
    /// page order.
    pub pages: Vec<(u32, Vec<u8>)>,
    /// Translation-cache recipe, when the source machine had one.
    pub(crate) tcache: Option<TCacheSnapshot>,
    /// Opaque cache-tag section (a `dda-mem` hierarchy tag snapshot);
    /// the VM layer carries it without interpreting it.
    pub cache_tags: Option<Vec<u8>>,
}

impl Checkpoint {
    /// Whether the snapshot carries translation-cache state.
    pub fn has_tcache(&self) -> bool {
        self.tcache.is_some()
    }

    /// Serializes to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(256 + self.pages.len() * (PAGE_BYTES + 4));
        w.put_raw(MAGIC);
        w.put_u32(VERSION);
        w.put_u64(self.key.program_hash);
        w.put_u64(self.key.inst_index);
        w.put_u64(self.key.config_hash);
        w.put_u32(self.pc);
        w.put_u8(self.halted as u8);
        w.put_u32(self.call_depth);
        w.put_u32(self.max_call_depth);
        w.put_u32(self.block_hint);
        w.put_u64(self.sp_version);
        w.put_u64(self.seq);
        for g in self.gpr {
            w.put_u32(g as u32);
        }
        for fb in self.fpr_bits {
            w.put_u64(fb);
        }
        w.put_u32(self.pages.len() as u32);
        for (index, bytes) in &self.pages {
            w.put_u32(*index);
            w.put_raw(bytes);
        }
        match &self.tcache {
            None => w.put_u8(0),
            Some(tc) => {
                w.put_u8(1);
                w.put_u32(tc.recipe.len() as u32);
                for r in &tc.recipe {
                    w.put_u32(r.start);
                    w.put_u32(r.succ[0]);
                    w.put_u32(r.succ[1]);
                    w.put_u32(r.dyn_succ.0);
                    w.put_u32(r.dyn_succ.1);
                }
                w.put_u64(tc.stats.blocks_decoded);
                w.put_u64(tc.stats.ops_decoded);
                w.put_u64(tc.stats.blocks_replayed);
                w.put_u64(tc.stats.ops_replayed);
                w.put_u64(tc.stats.inline_hits);
                w.put_u64(tc.stats.map_lookups);
            }
        }
        match &self.cache_tags {
            None => w.put_u8(0),
            Some(tags) => {
                w.put_u8(1);
                w.put_bytes(tags);
            }
        }
        w.into_vec()
    }

    /// Decodes the versioned binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on bad magic, an unknown version, a
    /// truncated buffer, or structurally invalid fields. Decoding
    /// validates *structure* only; program fit (block starts, links) is
    /// validated by [`crate::Vm::restore`] against the actual program.
    pub fn from_bytes(buf: &[u8]) -> Result<Checkpoint, SnapshotError> {
        let mut r = ByteReader::new(buf);
        if r.get_raw(8).map_err(|_| SnapshotError::BadMagic)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let key = CheckpointKey {
            program_hash: r.get_u64()?,
            inst_index: r.get_u64()?,
            config_hash: r.get_u64()?,
        };
        let pc = r.get_u32()?;
        let halted = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("halted flag")),
        };
        let call_depth = r.get_u32()?;
        let max_call_depth = r.get_u32()?;
        let block_hint = r.get_u32()?;
        let sp_version = r.get_u64()?;
        let seq = r.get_u64()?;
        if seq != key.inst_index {
            return Err(SnapshotError::Corrupt("seq does not match key.inst_index"));
        }
        let mut gpr = [0i32; 32];
        for g in &mut gpr {
            *g = r.get_u32()? as i32;
        }
        let mut fpr_bits = [0u64; 32];
        for fb in &mut fpr_bits {
            *fb = r.get_u64()?;
        }
        let n_pages = r.get_u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages.min(1 << 16));
        let mut last_index: Option<u32> = None;
        for _ in 0..n_pages {
            let index = r.get_u32()?;
            if let Some(prev) = last_index {
                if index <= prev {
                    return Err(SnapshotError::Corrupt("page indices not ascending"));
                }
            }
            last_index = Some(index);
            let bytes = r.get_raw(PAGE_BYTES)?.to_vec();
            pages.push((index, bytes));
        }
        let tcache = match r.get_u8()? {
            0 => None,
            1 => {
                let n = r.get_u32()? as usize;
                let mut recipe = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let start = r.get_u32()?;
                    let succ = [r.get_u32()?, r.get_u32()?];
                    let dyn_succ = (r.get_u32()?, r.get_u32()?);
                    recipe.push(BlockRecipe {
                        start,
                        succ,
                        dyn_succ,
                    });
                }
                let stats = TCacheStats {
                    blocks_decoded: r.get_u64()?,
                    ops_decoded: r.get_u64()?,
                    blocks_replayed: r.get_u64()?,
                    ops_replayed: r.get_u64()?,
                    inline_hits: r.get_u64()?,
                    map_lookups: r.get_u64()?,
                };
                Some(TCacheSnapshot { recipe, stats })
            }
            _ => return Err(SnapshotError::Corrupt("tcache flag")),
        };
        let cache_tags = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_bytes()?.to_vec()),
            _ => return Err(SnapshotError::Corrupt("cache-tags flag")),
        };
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Checkpoint {
            key,
            pc,
            halted,
            call_depth,
            max_call_depth,
            block_hint,
            sp_version,
            seq,
            gpr,
            fpr_bits,
            pages,
            tcache,
            cache_tags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            key: CheckpointKey {
                program_hash: 0xAAAA,
                inst_index: 1234,
                config_hash: 0xBBBB,
            },
            pc: 42,
            halted: false,
            call_depth: 3,
            max_call_depth: 9,
            block_hint: u32::MAX,
            sp_version: 17,
            seq: 1234,
            gpr: core::array::from_fn(|i| i as i32 - 16),
            fpr_bits: core::array::from_fn(|i| (i as u64) << 32 | 0x7ff8_0001),
            pages: vec![(1, vec![0xAB; 4096]), (5, vec![0xCD; 4096])],
            tcache: Some(TCacheSnapshot {
                recipe: vec![BlockRecipe {
                    start: 0,
                    succ: [1, u32::MAX],
                    dyn_succ: (u32::MAX, u32::MAX),
                }],
                stats: TCacheStats {
                    blocks_decoded: 1,
                    ..TCacheStats::default()
                },
            }),
            cache_tags: Some(vec![1, 2, 3]),
        }
    }

    #[test]
    fn binary_round_trip() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(
            Checkpoint::from_bytes(b"nope"),
            Err(SnapshotError::BadMagic)
        );
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // version word
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().to_bytes();
        // Every strict prefix must fail (loud, never panic or misparse).
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        // Trailing garbage is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&padded),
            Err(SnapshotError::Corrupt("trailing bytes"))
        );
    }
}
