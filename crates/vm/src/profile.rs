//! Workload characterisation over a dynamic instruction stream.
//!
//! Reproduces the measurements of the paper's Figures 2 and 3: the
//! frequency of loads and stores, the fraction that are local-variable
//! accesses, and the dynamic frame-size distribution.

use dda_isa::{Instr, StreamHint};
use dda_program::Program;
use dda_stats::Histogram;

use crate::machine::DynInst;

/// Aggregated statistics of a dynamic instruction stream.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StreamStats {
    /// Total dynamic instructions observed.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic loads whose address is in the stack region.
    pub local_loads: u64,
    /// Dynamic stores whose address is in the stack region.
    pub local_stores: u64,
    /// Accesses whose [`StreamHint`] disagreed with the ground-truth
    /// region (should be zero for compiler-exact classification).
    pub hint_mismatches: u64,
    /// Dynamic calls observed.
    pub calls: u64,
    /// Distribution of the callee's frame size in words, one sample per
    /// dynamic call (the paper's Figure 3).
    pub frame_words: Histogram,
    /// Distribution of call depth, one sample per dynamic call.
    pub call_depth: Histogram,
}

impl StreamStats {
    /// Fraction of all instructions that are loads.
    pub fn load_fraction(&self) -> f64 {
        ratio(self.loads, self.instructions)
    }

    /// Fraction of all instructions that are stores.
    pub fn store_fraction(&self) -> f64 {
        ratio(self.stores, self.instructions)
    }

    /// Fraction of loads that are local-variable accesses (paper Fig. 2:
    /// 30% on average, over 60% in 147.vortex).
    pub fn local_load_fraction(&self) -> f64 {
        ratio(self.local_loads, self.loads)
    }

    /// Fraction of stores that are local-variable accesses (paper Fig. 2:
    /// 48% on average, over 80% in 147.vortex).
    pub fn local_store_fraction(&self) -> f64 {
        ratio(self.local_stores, self.stores)
    }

    /// Fraction of all memory references that are local (paper: 10%–71%,
    /// average 36%).
    pub fn local_mem_fraction(&self) -> f64 {
        ratio(
            self.local_loads + self.local_stores,
            self.loads + self.stores,
        )
    }

    /// Fraction of all instructions that access memory.
    pub fn mem_fraction(&self) -> f64 {
        ratio(self.loads + self.stores, self.instructions)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Consumes [`DynInst`] records and accumulates [`StreamStats`].
///
/// The profiler needs the [`Program`] to look up the callee's static frame
/// size on each dynamic call.
#[derive(Clone, Debug)]
pub struct StreamProfiler<'p> {
    program: &'p Program,
    stats: StreamStats,
    depth: u32,
}

impl<'p> StreamProfiler<'p> {
    /// Creates a profiler for streams produced from `program`.
    pub fn new(program: &'p Program) -> StreamProfiler<'p> {
        StreamProfiler {
            program,
            stats: StreamStats::default(),
            depth: 0,
        }
    }

    /// Folds one dynamic instruction into the statistics.
    pub fn observe(&mut self, d: &DynInst) {
        self.stats.instructions += 1;
        if let Some(m) = d.mem {
            let local = m.is_local();
            if m.is_store {
                self.stats.stores += 1;
                if local {
                    self.stats.local_stores += 1;
                }
            } else {
                self.stats.loads += 1;
                if local {
                    self.stats.local_loads += 1;
                }
            }
            let mismatch = match m.hint {
                StreamHint::Local => !local,
                StreamHint::NonLocal => local,
                StreamHint::Unknown => false,
            };
            if mismatch {
                self.stats.hint_mismatches += 1;
            }
        }
        if d.instr.is_call() {
            self.stats.calls += 1;
            self.depth += 1;
            self.stats.call_depth.record(self.depth as u64);
            if let Some(f) = self.program.function_at(d.next_pc) {
                self.stats.frame_words.record(f.frame_words() as u64);
            }
        } else if matches!(d.instr, Instr::Ret) {
            self.depth = self.depth.saturating_sub(1);
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Consumes the profiler, returning the statistics.
    pub fn into_stats(self) -> StreamStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Vm;
    use dda_isa::{Gpr, MemWidth};
    use dda_program::{FunctionBuilder, ProgramBuilder};

    fn profiled(funcs: Vec<FunctionBuilder>) -> StreamStats {
        let mut b = ProgramBuilder::new();
        for f in funcs {
            b.add_function(f);
        }
        let p = b.build().unwrap();
        let mut vm = Vm::new(p.clone());
        let mut prof = StreamProfiler::new(&p);
        while let Some(d) = vm.step().unwrap() {
            prof.observe(&d);
        }
        assert!(vm.is_halted());
        prof.into_stats()
    }

    #[test]
    fn counts_loads_stores_and_locality() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.store_local(Gpr::T0, 0); // local store
        f.load_local(Gpr::T1, 0); // local load
        f.load(Gpr::T2, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal); // global load
        f.halt();
        let s = profiled(vec![f]);
        assert_eq!(s.instructions, 5);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.local_loads, 1);
        assert_eq!(s.local_stores, 1);
        assert_eq!(s.hint_mismatches, 0);
        assert!((s.local_mem_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mem_fraction() - 3.0 / 5.0).abs() < 1e-12);
        assert!((s.local_load_fraction() - 0.5).abs() < 1e-12);
        assert!((s.local_store_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_hint_mismatches() {
        let mut f = FunctionBuilder::new("main");
        // A load from the global region wrongly hinted local.
        f.load(Gpr::T0, Gpr::GP, 0, MemWidth::Word, StreamHint::Local);
        // A stack store wrongly hinted non-local.
        f.addi(Gpr::SP, Gpr::SP, -8);
        f.store(Gpr::T0, Gpr::SP, 0, MemWidth::Word, StreamHint::NonLocal);
        // Unknown is never a mismatch.
        f.load(Gpr::T1, Gpr::SP, 0, MemWidth::Word, StreamHint::Unknown);
        f.halt();
        let s = profiled(vec![f]);
        assert_eq!(s.hint_mismatches, 2);
    }

    #[test]
    fn frame_histogram_samples_per_dynamic_call() {
        let mut main = FunctionBuilder::new("main");
        main.call("leaf");
        main.call("leaf");
        main.halt();
        let mut leaf = FunctionBuilder::with_frame("leaf", 12); // 3 words
        leaf.ret();
        let s = profiled(vec![main, leaf]);
        assert_eq!(s.calls, 2);
        assert_eq!(s.frame_words.samples(), 2);
        assert_eq!(s.frame_words.count(3), 2);
        assert_eq!(s.call_depth.count(1), 2);
    }

    #[test]
    fn call_depth_tracks_nesting() {
        let mut main = FunctionBuilder::new("main");
        main.call("mid");
        main.halt();
        let mut mid = FunctionBuilder::with_frame("mid", 8);
        mid.addi(Gpr::SP, Gpr::SP, -8);
        mid.store_local(Gpr::RA, 0);
        mid.call("leaf");
        mid.load_local(Gpr::RA, 0);
        mid.addi(Gpr::SP, Gpr::SP, 8);
        mid.ret();
        let mut leaf = FunctionBuilder::new("leaf");
        leaf.ret();
        let s = profiled(vec![main, mid, leaf]);
        assert_eq!(s.call_depth.count(1), 1);
        assert_eq!(s.call_depth.count(2), 1);
        assert_eq!(s.call_depth.max(), Some(2));
    }

    #[test]
    fn empty_stats_ratios_are_zero() {
        let s = StreamStats::default();
        assert_eq!(s.load_fraction(), 0.0);
        assert_eq!(s.local_mem_fraction(), 0.0);
    }
}
