//! Pre-decoded basic blocks: the micro-op format of the translation
//! cache.
//!
//! A [`Block`] is one basic block of the guest program decoded exactly
//! once: a run of straight-line micro-ops followed by a [`Terminator`].
//! Each [`MicroOp`] carries the original [`Instr`] (replayed into the
//! emitted [`crate::DynInst`] verbatim) plus an execution payload with
//! everything static pre-resolved — ALU/FPU/branch evaluators as plain
//! function pointers (routed through the canonical `eval` of `dda-isa`,
//! so there is a single source of operator semantics), register indices,
//! and per-access memory metadata (`base == $sp`, width in bytes, the
//! [`StreamHint`], whether the access stores). Only the genuinely dynamic
//! work — register reads, effective addresses, region classification,
//! `sp_version` stack-slot tagging — remains for replay time.

use dda_isa::{AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, Instr, MemWidth, StreamHint};

/// Sentinel for "no block id": unresolved successor links and the
/// machine's block hint.
pub(crate) const NO_BLOCK: u32 = u32::MAX;

/// Cap on straight-line micro-ops per block. Bounds the dispatch ring the
/// pipeline fills per refill; blocks that would run longer end in an
/// implicit [`Terminator::FallThrough`] to their own continuation.
pub(crate) const MAX_BLOCK_OPS: usize = 64;

pub(crate) type AluFn = fn(i32, i32) -> i32;
pub(crate) type FpuFn = fn(f64, f64) -> f64;
pub(crate) type FpCmpFn = fn(f64, f64) -> bool;
pub(crate) type BranchFn = fn(i32, i32) -> bool;

/// Resolves an operator enum value to a monomorphic function pointer.
///
/// Each arm wraps `Op::Variant.eval(..)` in its own `fn` item, so the
/// compiler constant-folds the inner match away while the semantics stay
/// defined in exactly one place (`dda-isa`'s `eval`).
macro_rules! resolve {
    ($op:expr, $Op:ident, ($a:ty, $b:ty) -> $r:ty, [$($v:ident),+ $(,)?]) => {
        match $op {
            $($Op::$v => {
                fn eval(a: $a, b: $b) -> $r {
                    $Op::$v.eval(a, b)
                }
                eval as fn($a, $b) -> $r
            })+
        }
    };
}

pub(crate) fn alu_fn(op: AluOp) -> AluFn {
    resolve!(op, AluOp, (i32, i32) -> i32,
        [Add, Sub, Mul, Div, Rem, And, Or, Xor, Nor, Sll, Srl, Sra, Slt, Sltu])
}

pub(crate) fn fpu_fn(op: FpuOp) -> FpuFn {
    resolve!(op, FpuOp, (f64, f64) -> f64, [Add, Sub, Mul, Div, Neg, Abs, Mov, Sqrt])
}

pub(crate) fn fp_cmp_fn(cond: FpCond) -> FpCmpFn {
    resolve!(cond, FpCond, (f64, f64) -> bool, [Eq, Lt, Le])
}

pub(crate) fn branch_fn(cond: BranchCond) -> BranchFn {
    resolve!(cond, BranchCond, (i32, i32) -> bool, [Eq, Ne, Lt, Ge, Le, Gt])
}

/// Pre-decoded memory-access metadata: everything the architectural
/// access check needs that does not depend on run-time register values.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MemOp {
    /// Base address register.
    pub base: Gpr,
    /// Static offset added to the base.
    pub offset: i32,
    /// Access size in bytes.
    pub bytes: u32,
    /// The compiler's stream hint, carried into the [`crate::MemInfo`].
    pub hint: StreamHint,
    /// Whether the access writes memory.
    pub is_store: bool,
    /// `base == $sp`, pre-resolved: drives stack-slot tagging
    /// (`sp_version` pairing) and the stack-overflow classification of
    /// unmapped accesses.
    pub base_is_sp: bool,
}

impl MemOp {
    pub(crate) fn new(
        base: Gpr,
        offset: i32,
        bytes: u32,
        hint: StreamHint,
        is_store: bool,
    ) -> MemOp {
        MemOp {
            base,
            offset,
            bytes,
            hint,
            is_store,
            base_is_sp: base == Gpr::SP,
        }
    }
}

/// The execution payload of a straight-line micro-op.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    /// No architectural effect.
    Nop,
    /// `rd = f(rs, rt)`.
    Alu { f: AluFn, rd: Gpr, rs: Gpr, rt: Gpr },
    /// `rd = f(rs, imm)`.
    AluImm {
        f: AluFn,
        rd: Gpr,
        rs: Gpr,
        imm: i32,
    },
    /// `rd = imm`.
    LoadImm { rd: Gpr, imm: i32 },
    /// `fd = f(fs, ft)`.
    Fpu { f: FpuFn, fd: Fpr, fs: Fpr, ft: Fpr },
    /// `rd = f(fs, ft) as i32`.
    FpCmp {
        f: FpCmpFn,
        rd: Gpr,
        fs: Fpr,
        ft: Fpr,
    },
    /// `fd = rs as f64`.
    IntToFp { fd: Fpr, rs: Gpr },
    /// `rd = fs as i32` (saturating).
    FpToInt { rd: Gpr, fs: Fpr },
    /// Integer load of `width` into `rd`.
    Load { rd: Gpr, m: MemOp, width: MemWidth },
    /// Integer store of `width` from `rs`.
    Store { rs: Gpr, m: MemOp, width: MemWidth },
    /// 8-byte floating-point load into `fd`.
    FLoad { fd: Fpr, m: MemOp },
    /// 8-byte floating-point store from `fs`.
    FStore { fs: Fpr, m: MemOp },
}

/// One pre-decoded straight-line micro-op.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MicroOp {
    /// The fetch pc (stamped into the emitted [`crate::DynInst`] and
    /// used for fault attribution).
    pub pc: u32,
    /// The original instruction, carried verbatim into the stream.
    pub instr: Instr,
    /// The pre-decoded execution payload.
    pub kind: OpKind,
}

impl MicroOp {
    /// Decodes a straight-line instruction, or returns `None` when the
    /// instruction is a control transfer or `Halt` (a block terminator).
    pub fn decode(pc: u32, instr: Instr) -> Option<MicroOp> {
        let kind = match instr {
            Instr::Nop => OpKind::Nop,
            Instr::Alu { op, rd, rs, rt } => OpKind::Alu {
                f: alu_fn(op),
                rd,
                rs,
                rt,
            },
            Instr::AluImm { op, rd, rs, imm } => OpKind::AluImm {
                f: alu_fn(op),
                rd,
                rs,
                imm,
            },
            Instr::LoadImm { rd, imm } => OpKind::LoadImm { rd, imm },
            Instr::Fpu { op, fd, fs, ft } => OpKind::Fpu {
                f: fpu_fn(op),
                fd,
                fs,
                ft,
            },
            Instr::FpCmp { cond, rd, fs, ft } => OpKind::FpCmp {
                f: fp_cmp_fn(cond),
                rd,
                fs,
                ft,
            },
            Instr::IntToFp { fd, rs } => OpKind::IntToFp { fd, rs },
            Instr::FpToInt { rd, fs } => OpKind::FpToInt { rd, fs },
            Instr::Load {
                rd,
                base,
                offset,
                width,
                hint,
            } => OpKind::Load {
                rd,
                m: MemOp::new(base, offset, width.bytes(), hint, false),
                width,
            },
            Instr::Store {
                rs,
                base,
                offset,
                width,
                hint,
            } => OpKind::Store {
                rs,
                m: MemOp::new(base, offset, width.bytes(), hint, true),
                width,
            },
            Instr::FLoad {
                fd,
                base,
                offset,
                hint,
            } => OpKind::FLoad {
                fd,
                m: MemOp::new(base, offset, 8, hint, false),
            },
            Instr::FStore {
                fs,
                base,
                offset,
                hint,
            } => OpKind::FStore {
                fs,
                m: MemOp::new(base, offset, 8, hint, true),
            },
            Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Call { .. }
            | Instr::CallReg { .. }
            | Instr::Ret
            | Instr::Halt => return None,
        };
        Some(MicroOp { pc, instr, kind })
    }
}

/// The control transfer that ends a block.
///
/// Static targets carry a pre-validated "in image" flag (`ok`), so taken
/// transfers raise [`crate::VmError::IllegalTarget`] without touching the
/// program image at replay time. A target equal to the sequential
/// fall-through pc is always `ok`: the interpreter's illegal-target check
/// applies only to *redirecting* transfers, and sequential escape off the
/// image end stays lazy (it faults as `PcOutOfRange` on the next step).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Terminator {
    /// The next pc is a static leader (or the block hit the length cap):
    /// no instruction executes, the block simply chains to `term_pc`.
    FallThrough,
    /// Conditional branch to `target`, falling through to `term_pc + 1`.
    Branch {
        f: BranchFn,
        rs: Gpr,
        rt: Gpr,
        target: u32,
        taken_ok: bool,
    },
    /// Unconditional jump.
    Jump { target: u32, ok: bool },
    /// Direct call (writes `$ra`, bumps the call depth).
    Call { target: u32, ok: bool },
    /// Indirect call through `rs`: target and successor are dynamic.
    CallReg { rs: Gpr },
    /// Return through `$ra`: target and successor are dynamic.
    Ret,
    /// Stop the machine.
    Halt,
}

impl Terminator {
    /// Decodes a terminator instruction; straight-line instructions
    /// return `None`.
    pub fn decode(pc: u32, instr: Instr, image_len: u32) -> Option<Terminator> {
        let in_image = |target: u32| target == pc + 1 || target < image_len;
        match instr {
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => Some(Terminator::Branch {
                f: branch_fn(cond),
                rs,
                rt,
                target,
                taken_ok: in_image(target),
            }),
            Instr::Jump { target } => Some(Terminator::Jump {
                target,
                ok: in_image(target),
            }),
            Instr::Call { target } => Some(Terminator::Call {
                target,
                ok: in_image(target),
            }),
            Instr::CallReg { rs } => Some(Terminator::CallReg { rs }),
            Instr::Ret => Some(Terminator::Ret),
            Instr::Halt => Some(Terminator::Halt),
            _ => None,
        }
    }
}

/// One decoded basic block.
///
/// `Copy` is deliberate: replay snapshots the block header once, so the
/// micro-op walk borrows only the cache's flat op array while the
/// machine state is mutated.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Block {
    /// First pc of the block.
    pub start: u32,
    /// `(index, len)` into the cache's flat micro-op array.
    pub ops: (u32, u32),
    /// The control transfer ending the block.
    pub term: Terminator,
    /// Pc of the terminator; for [`Terminator::FallThrough`] this is the
    /// successor pc itself (one past the last straight-line op).
    pub term_pc: u32,
    /// The terminator instruction as fetched ([`Instr::Nop`] for the
    /// instruction-less fall-through).
    pub term_instr: Instr,
    /// Inline-cached successor block ids ([`NO_BLOCK`] = unresolved):
    /// `succ[0]` is the fall-through / not-taken / static-target link,
    /// `succ[1]` the taken-branch link. Once resolved a link never needs
    /// revalidation — static targets are fixed and the program image is
    /// immutable.
    pub succ: [u32; 2],
    /// Monomorphic inline cache for dynamic targets (`ret` and indirect
    /// calls): the last observed `(target pc, block id)` pair.
    pub dyn_succ: (u32, u32),
}
