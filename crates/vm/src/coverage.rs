//! Lightweight op/edge coverage for fuzz campaigns.
//!
//! A [`CoverageMap`] observes a dynamic instruction stream and records
//! two cheap signals:
//!
//! * **Op-class coverage** — a counter per *instruction class* (ALU op ×
//!   immediate form, memory width × stream hint, branch condition, …),
//!   [`OP_CLASS_COUNT`] classes total. This answers "which regions of the
//!   ISA has the campaign actually executed?".
//! * **Edge coverage** — an AFL-style fixed-size bitmap over hashed
//!   `(pc, next_pc)` pairs. Collisions are possible and acceptable; the
//!   bitmap is a campaign progress signal, not a ground-truth CFG.
//!
//! Maps merge cheaply, so a campaign can keep one per worker and fold
//! them into the report at the end.

use dda_isa::Instr;

use crate::machine::DynInst;

/// Number of distinct instruction classes [`op_class`] can return.
pub const OP_CLASS_COUNT: usize = 78;

/// Number of buckets in the edge-hash bitmap (2^16, AFL-sized).
pub const EDGE_BUCKETS: usize = 1 << 16;

const EDGE_WORDS: usize = EDGE_BUCKETS / 64;

/// Maps an instruction to its coverage class in `0..OP_CLASS_COUNT`.
///
/// The partition is finer than the enum variant (each ALU op, each
/// width×hint combination is its own class) so a campaign can tell `div`
/// from `add` and a local-hinted byte store from an unhinted word load.
pub fn op_class(i: &Instr) -> usize {
    const ALU_OPS: usize = 14;
    const FPU_OPS: usize = 8;
    const FP_CONDS: usize = 3;
    const BR_CONDS: usize = 6;
    let width3 = |w: dda_isa::MemWidth| w.bytes().trailing_zeros() as usize; // 1,2,4 -> 0,1,2
    let hint3 = |h: dda_isa::StreamHint| h as usize;
    match *i {
        Instr::Alu { op, .. } => op as usize,
        Instr::AluImm { op, .. } => ALU_OPS + op as usize,
        Instr::LoadImm { .. } => 2 * ALU_OPS,
        Instr::Fpu { op, .. } => 2 * ALU_OPS + 1 + op as usize,
        Instr::FpCmp { cond, .. } => 2 * ALU_OPS + 1 + FPU_OPS + cond as usize,
        Instr::IntToFp { .. } => 2 * ALU_OPS + 1 + FPU_OPS + FP_CONDS,
        Instr::FpToInt { .. } => 2 * ALU_OPS + 2 + FPU_OPS + FP_CONDS,
        Instr::Load { width, hint, .. } => {
            2 * ALU_OPS + 3 + FPU_OPS + FP_CONDS + 3 * width3(width) + hint3(hint)
        }
        Instr::Store { width, hint, .. } => {
            2 * ALU_OPS + 12 + FPU_OPS + FP_CONDS + 3 * width3(width) + hint3(hint)
        }
        Instr::FLoad { hint, .. } => 2 * ALU_OPS + 21 + FPU_OPS + FP_CONDS + hint3(hint),
        Instr::FStore { hint, .. } => 2 * ALU_OPS + 24 + FPU_OPS + FP_CONDS + hint3(hint),
        Instr::Branch { cond, .. } => 2 * ALU_OPS + 27 + FPU_OPS + FP_CONDS + cond as usize,
        Instr::Jump { .. } => 2 * ALU_OPS + 27 + FPU_OPS + FP_CONDS + BR_CONDS,
        Instr::Call { .. } => 2 * ALU_OPS + 28 + FPU_OPS + FP_CONDS + BR_CONDS,
        Instr::CallReg { .. } => 2 * ALU_OPS + 29 + FPU_OPS + FP_CONDS + BR_CONDS,
        Instr::Ret => 2 * ALU_OPS + 30 + FPU_OPS + FP_CONDS + BR_CONDS,
        Instr::Halt => 2 * ALU_OPS + 31 + FPU_OPS + FP_CONDS + BR_CONDS,
        Instr::Nop => 2 * ALU_OPS + 32 + FPU_OPS + FP_CONDS + BR_CONDS,
    }
}

/// Accumulated op-class and edge coverage over one or more dynamic
/// streams. See the module docs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoverageMap {
    ops: [u64; OP_CLASS_COUNT],
    edges: Box<[u64; EDGE_WORDS]>,
    observed: u64,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap {
            ops: [0; OP_CLASS_COUNT],
            edges: Box::new([0; EDGE_WORDS]),
            observed: 0,
        }
    }

    /// Records one dynamic instruction: bumps its op class and sets the
    /// bucket for the `(pc, next_pc)` edge.
    #[inline]
    pub fn observe(&mut self, d: &DynInst) {
        self.ops[op_class(&d.instr)] += 1;
        let h = (d.pc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (d.next_pc as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let bucket = (h >> 48) as usize;
        self.edges[bucket / 64] |= 1u64 << (bucket % 64);
        self.observed += 1;
    }

    /// Folds another map into this one (counter sums, bitmap union).
    pub fn merge(&mut self, other: &CoverageMap) {
        for (a, b) in self.ops.iter_mut().zip(other.ops.iter()) {
            *a += *b;
        }
        for (a, b) in self.edges.iter_mut().zip(other.edges.iter()) {
            *a |= *b;
        }
        self.observed += other.observed;
    }

    /// Distinct instruction classes seen at least once (out of
    /// [`OP_CLASS_COUNT`]).
    pub fn op_classes_seen(&self) -> usize {
        self.ops.iter().filter(|c| **c > 0).count()
    }

    /// Dynamic execution count of one op class.
    pub fn op_count(&self, class: usize) -> u64 {
        self.ops.get(class).copied().unwrap_or(0)
    }

    /// Populated edge buckets (out of [`EDGE_BUCKETS`]).
    pub fn edge_buckets_seen(&self) -> usize {
        self.edges.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total dynamic instructions observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_isa::{AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, MemWidth, StreamHint};

    fn every_instr() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::LoadImm {
                rd: Gpr::T0,
                imm: 1,
            },
            Instr::IntToFp {
                fd: Fpr::new(0),
                rs: Gpr::T0,
            },
            Instr::FpToInt {
                rd: Gpr::T0,
                fs: Fpr::new(0),
            },
            Instr::Jump { target: 0 },
            Instr::Call { target: 0 },
            Instr::CallReg { rs: Gpr::T0 },
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu {
                op,
                rd: Gpr::T0,
                rs: Gpr::T1,
                rt: Gpr::T2,
            });
            v.push(Instr::AluImm {
                op,
                rd: Gpr::T0,
                rs: Gpr::T1,
                imm: 1,
            });
        }
        for op in FpuOp::ALL {
            v.push(Instr::Fpu {
                op,
                fd: Fpr::new(0),
                fs: Fpr::new(1),
                ft: Fpr::new(1),
            });
        }
        for cond in FpCond::ALL {
            v.push(Instr::FpCmp {
                cond,
                rd: Gpr::T0,
                fs: Fpr::new(0),
                ft: Fpr::new(1),
            });
        }
        for cond in BranchCond::ALL {
            v.push(Instr::Branch {
                cond,
                rs: Gpr::T0,
                rt: Gpr::T1,
                target: 0,
            });
        }
        for width in [MemWidth::Byte, MemWidth::Half, MemWidth::Word] {
            for hint in [StreamHint::Unknown, StreamHint::Local, StreamHint::NonLocal] {
                v.push(Instr::Load {
                    rd: Gpr::T0,
                    base: Gpr::GP,
                    offset: 0,
                    width,
                    hint,
                });
                v.push(Instr::Store {
                    rs: Gpr::T0,
                    base: Gpr::GP,
                    offset: 0,
                    width,
                    hint,
                });
            }
        }
        for hint in [StreamHint::Unknown, StreamHint::Local, StreamHint::NonLocal] {
            v.push(Instr::FLoad {
                fd: Fpr::new(0),
                base: Gpr::GP,
                offset: 0,
                hint,
            });
            v.push(Instr::FStore {
                fs: Fpr::new(0),
                base: Gpr::GP,
                offset: 0,
                hint,
            });
        }
        v
    }

    #[test]
    fn op_class_is_a_bijection_over_the_class_partition() {
        let all = every_instr();
        let mut seen = vec![false; OP_CLASS_COUNT];
        for i in &all {
            let c = op_class(i);
            assert!(c < OP_CLASS_COUNT, "{i} -> class {c} out of range");
            assert!(!seen[c], "{i} collides with an earlier class {c}");
            seen[c] = true;
        }
        assert_eq!(all.len(), OP_CLASS_COUNT, "partition size drifted");
        assert!(seen.iter().all(|s| *s), "some class unreachable");
    }

    #[test]
    fn observe_and_merge_accumulate() {
        let d = |pc: u32, next: u32, instr: Instr| DynInst {
            seq: 0,
            pc,
            instr,
            next_pc: next,
            mem: None,
        };
        let mut a = CoverageMap::new();
        a.observe(&d(0, 1, Instr::Nop));
        a.observe(&d(1, 2, Instr::Halt));
        let mut b = CoverageMap::new();
        b.observe(&d(5, 6, Instr::Nop));
        assert_eq!(a.observed(), 2);
        assert_eq!(a.op_classes_seen(), 2);
        let edges_a = a.edge_buckets_seen();
        assert!(edges_a >= 1);
        a.merge(&b);
        assert_eq!(a.observed(), 3);
        assert_eq!(a.op_count(op_class(&Instr::Nop)), 2);
        assert!(a.edge_buckets_seen() >= edges_a);
    }

    #[test]
    fn distinct_edges_usually_hit_distinct_buckets() {
        let mut m = CoverageMap::new();
        for pc in 0..200u32 {
            m.observe(&DynInst {
                seq: 0,
                pc,
                instr: Instr::Nop,
                next_pc: pc + 1,
                mem: None,
            });
        }
        // 200 edges into 65536 buckets: collisions are rare.
        assert!(m.edge_buckets_seen() > 190);
    }
}
