//! Sparse, page-granular data memory.

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const N_PAGES: usize = 1 << (32 - PAGE_SHIFT);

// Page-table lookups sit on the hot path of every simulated memory
// access, so the table is a flat one-level array indexed by page number
// (2²⁰ slots × 8 bytes = 8 MB of pointers per VM) — no hashing, no
// probing, one predictable load per access.
type PageMap = Vec<Option<Box<[u8; PAGE_SIZE]>>>;

/// A sparse 32-bit byte-addressable memory.
///
/// Pages (4 KB) are allocated on first write; reads of untouched memory
/// return zero, matching the zero-initialised `.bss`/stack semantics the
/// synthetic workloads rely on. All multi-byte accesses are little-endian.
/// Alignment is *not* checked here — the [`crate::Vm`] enforces it so that
/// misalignment errors carry the faulting pc.
#[derive(Clone, Debug)]
pub struct SparseMemory {
    pages: PageMap,
    resident: usize,
}

impl Default for SparseMemory {
    fn default() -> SparseMemory {
        SparseMemory {
            pages: vec![None; N_PAGES],
            resident: 0,
        }
    }
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Number of 4 KB pages currently materialised.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages[(addr >> PAGE_SHIFT) as usize].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let slot = &mut self.pages[(addr >> PAGE_SHIFT) as usize];
        if slot.is_none() {
            *slot = Some(Box::new([0; PAGE_SIZE]));
            self.resident += 1;
        }
        match slot {
            Some(p) => p,
            None => unreachable!("slot filled above"),
        }
    }

    /// Iterates the resident pages as `(page_index, bytes)` pairs in
    /// ascending page order — the serialization view used by checkpoints.
    pub fn resident_page_bytes(&self) -> impl Iterator<Item = (u32, &[u8])> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_deref().map(|p| (i as u32, &p[..])))
    }

    /// Materialises the page `index` with the given contents, replacing
    /// whatever was there. Returns `false` (without touching memory) if
    /// `index` is out of range or `bytes` is not exactly one page —
    /// checkpoint decoding treats that as corruption.
    pub fn install_page(&mut self, index: u32, bytes: &[u8]) -> bool {
        if index as usize >= N_PAGES || bytes.len() != PAGE_SIZE {
            return false;
        }
        let slot = &mut self.pages[index as usize];
        if slot.is_none() {
            self.resident += 1;
        }
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page.copy_from_slice(bytes);
        *slot = Some(page);
        true
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Reads `N` little-endian bytes starting at `addr` (which may cross a
    /// page boundary; the address space wraps modulo 2³²).
    ///
    /// The common within-page case resolves the page once; only accesses
    /// straddling a 4 KB boundary fall back to byte-at-a-time.
    pub fn read_bytes<const N: usize>(&self, addr: u32) -> [u8; N] {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        let mut out = [0u8; N];
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                out.copy_from_slice(&p[off..off + N]);
            }
        } else {
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u32));
            }
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes<const N: usize>(&mut self, addr: u32, bytes: [u8; N]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + N <= PAGE_SIZE {
            self.page_mut(addr)[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.into_iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), b);
            }
        }
    }

    /// Reads a 16-bit little-endian value.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 16-bit little-endian value.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, v: u16) {
        self.write_bytes(addr, v.to_le_bytes());
    }

    /// Reads a 32-bit little-endian value.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.write_bytes(addr, v.to_le_bytes());
    }

    /// Reads a 64-bit little-endian value.
    #[inline]
    pub fn read_u64(&self, addr: u32) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 64-bit little-endian value.
    #[inline]
    pub fn write_u64(&mut self, addr: u32, v: u64) {
        self.write_bytes(addr, v.to_le_bytes());
    }

    /// Reads an `f64` stored with [`SparseMemory::write_f64`].
    #[inline]
    pub fn read_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    #[inline]
    pub fn write_f64(&mut self, addr: u32, v: f64) {
        self.write_u64(addr, v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xdead_beec), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trips_all_widths() {
        let mut m = SparseMemory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        m.write_f64(48, -1.25);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(48), -1.25);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(100, 0x0403_0201);
        assert_eq!(m.read_u8(100), 1);
        assert_eq!(m.read_u8(101), 2);
        assert_eq!(m.read_u8(102), 3);
        assert_eq!(m.read_u8(103), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let boundary = PAGE_SIZE as u32 - 2;
        m.write_u32(boundary, 0x1122_3344);
        assert_eq!(m.read_u32(boundary), 0x1122_3344);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn writes_are_isolated_per_address() {
        let mut m = SparseMemory::new();
        m.write_u32(0, 0xffff_ffff);
        m.write_u8(1, 0);
        assert_eq!(m.read_u32(0), 0xffff_00ff);
    }

    #[test]
    fn page_export_and_install_round_trip() {
        let mut m = SparseMemory::new();
        m.write_u32(0x1000, 0xdead_beef);
        m.write_u8(0x5000, 7);
        let pages: Vec<(u32, Vec<u8>)> = m
            .resident_page_bytes()
            .map(|(i, b)| (i, b.to_vec()))
            .collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].0, 1);
        assert_eq!(pages[1].0, 5);
        let mut n = SparseMemory::new();
        for (i, b) in &pages {
            assert!(n.install_page(*i, b));
        }
        assert_eq!(n.read_u32(0x1000), 0xdead_beef);
        assert_eq!(n.read_u8(0x5000), 7);
        assert_eq!(n.resident_pages(), 2);
        // Corrupt installs are rejected without touching state.
        assert!(!n.install_page(0, &[0u8; 3]));
        assert!(!n.install_page(u32::MAX, &[0u8; PAGE_SIZE]));
        assert_eq!(n.resident_pages(), 2);
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let mut m = SparseMemory::new();
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        m.write_f64(8, weird);
        assert_eq!(m.read_f64(8).to_bits(), weird.to_bits());
    }
}
