#![warn(missing_docs)]

//! # dda-vm — the functional (architectural) simulator
//!
//! Executes a [`dda_program::Program`] instruction by instruction and emits
//! a stream of [`DynInst`] records — the *dynamic instruction stream* that
//! drives the cycle-level core in `dda-core`.
//!
//! Because the paper's machine model uses a perfect front-end (perfect
//! I-cache and oracle branch prediction, Table 1), the pipeline never
//! fetches down a wrong path; the architectural execution order *is* the
//! fetch order. The timing model can therefore consume this stream
//! directly — a functional-first, timing-directed organisation that is
//! cycle-equivalent to execution-driven simulation for this machine.
//!
//! Each [`DynInst`] carries everything the timing model needs:
//! the decoded instruction, the effective address and its ground-truth
//! [`dda_program::MemRegion`], the [`dda_isa::StreamHint`], and the
//! `$sp`-version/static-offset pair used by the LVAQ's *fast data
//! forwarding* (paper §2.2.2).
//!
//! [`StreamProfiler`] aggregates the workload-characterisation statistics
//! of the paper's Figures 2 and 3 from a stream.
//!
//! ```
//! use dda_program::{FunctionBuilder, ProgramBuilder};
//! use dda_isa::Gpr;
//! use dda_vm::Vm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut main = FunctionBuilder::new("main");
//! main.load_imm(Gpr::T0, 21);
//! main.alu(dda_isa::AluOp::Add, Gpr::V0, Gpr::T0, Gpr::T0);
//! main.halt();
//! let mut b = ProgramBuilder::new();
//! b.add_function(main);
//! let mut vm = Vm::new(b.build()?);
//! vm.run(1_000)?;
//! assert_eq!(vm.gpr(Gpr::V0), 42);
//! # Ok(())
//! # }
//! ```

mod block;
mod coverage;
mod machine;
mod memory;
mod profile;
mod snapshot;
mod tcache;

pub use coverage::{op_class, CoverageMap, EDGE_BUCKETS, OP_CLASS_COUNT};
pub use machine::{DynInst, MemInfo, RunSummary, Stream, Vm, VmError};
pub use memory::SparseMemory;
pub use profile::{StreamProfiler, StreamStats};
pub use snapshot::{Checkpoint, CheckpointKey, SnapshotError};
pub use tcache::TCacheStats;
