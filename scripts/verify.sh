#!/usr/bin/env bash
# Standard pre-PR check: tier-1 verification plus smoke runs.
#
#   scripts/verify.sh [--quick]
#
# Tier-1 (from ROADMAP.md) is `cargo build --release && cargo test -q`.
# The throughput smoke run exercises the benchmark binary in `--quick`
# mode, which also cross-checks the incremental scheduler kernel against
# the rescan-per-cycle reference kernel on three workloads (the run
# aborts if any counter diverges). The fault-campaign smoke run injects
# every fault class once and fails on any host panic or unexpected
# outcome. Both write their reports to throwaway paths so the committed
# BENCH_*.json files (full budgets) are not clobbered by smoke numbers.
#
# The fuzz smoke runs a bounded differential campaign (200 generated
# programs, fixed seed) through the fast-vs-reference oracle and fails
# on any host panic or divergence; the corpus-replay step reruns every
# minimized reproducer checked into tests/corpus/ through both kernels.
# Both run in normal AND --quick modes — they are the cheapest
# whole-machine bit-identity gates we have.
#
# `--quick` replaces the three-workload throughput smoke with a
# two-workload perf smoke (compress + li) and skips the fault-campaign
# smoke — the fastest loop that still fails the build if the fast kernel
# ever loses bit-identity with the reference kernel (the binary asserts
# identity internally; speedup numbers are reported, not gated).
#
# The sampling smoke runs the interval-sampling driver end-to-end (the
# full-run CPI must land inside the sampled confidence interval), and
# the checkpoint round-trip test proves save/restore/resume is
# bit-identical to continuous simulation, fault injection included.
#
# The fmt gate keeps the tree `cargo fmt`-clean; the clippy gate bans
# `.unwrap()`/`.expect()` from the hot simulation crates' library code
# (tests and benches are exempt via cfg(test)): every runtime failure
# there must surface as a typed error value.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: scripts/verify.sh [--quick]" >&2; exit 2 ;;
    esac
done

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== fmt: cargo fmt --check"
cargo fmt --check

echo "== clippy: no unwrap/expect in simulation crates"
cargo clippy -q -p dda-core -p dda-vm -p dda-mem -p dda-program -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Block-cache smoke: one loop-heavy and one call-heavy program replayed
# through the translation cache and cross-checked instruction-for-
# instruction against the interpretive front-end (final state included).
echo "== block-cache smoke (loop-heavy + call-heavy vs interpreter)"
cargo test --release -q --test block_cache quick_smoke

# Differential-fuzz smoke: 200 seeded generated/mutated programs through
# fast vs reference with the auditor armed; the binary exits nonzero on
# any host panic or (unminimized) divergence. Runs in both modes.
echo "== differential-fuzz smoke (200 programs, fixed seed)"
cargo run --release -q -p dda-bench --bin fuzz -- \
    --quick --seed 3405695742 \
    --out target/BENCH_fuzz_smoke.json --corpus target/fuzz_corpus_smoke

# Corpus replay: every checked-in minimized reproducer re-assembles and
# reruns through both kernels (and planted-* entries must still
# reproduce their defect when it is armed). real-* entries are the
# hand-written quicksort/matmul/tak programs with verified answers.
echo "== corpus replay (tests/corpus/)"
cargo test --release -q --test corpus_replay

# Sampling smoke: the interval-sampling driver in --quick mode — the
# full-run CPI must land inside the sampled confidence interval or the
# binary exits nonzero.
echo "== sampling smoke (--quick)"
cargo run --release -q -p dda-bench --bin sampling -- \
    --quick --out target/BENCH_sampling_smoke.json

# Checkpoint round-trip: save -> serialize -> restore -> run must be
# bit-identical to continuous simulation, fault injection included.
echo "== checkpoint round-trip (tests/checkpoint_roundtrip.rs)"
cargo test --release -q --test checkpoint_roundtrip

# DSE service smoke: a real dse_server on an ephemeral port serves a
# 2x2 grid twice — the first pass simulates and streams at least one
# incremental CELL line, the second must be all cache hits with zero
# simulated instructions. Then the staleness gate: the committed
# BENCH_dse.json must have been generated at this build's
# KERNEL_VERSION (a kernel bump without regeneration fails here).
echo "== DSE service smoke (server + client, cold then warm)"
DSE_TMP="target/dse_smoke"
rm -rf "$DSE_TMP"; mkdir -p "$DSE_TMP"
target/release/dse_server --addr 127.0.0.1:0 \
    --store "$DSE_TMP/results" --ckpt "$DSE_TMP/ckpt" --once 2 \
    > "$DSE_TMP/server.out" 2> "$DSE_TMP/server.err" &
DSE_PID=$!
DSE_ADDR=""
for _ in $(seq 1 100); do
    DSE_ADDR=$(awk '/^LISTENING/{print $2}' "$DSE_TMP/server.out" 2>/dev/null || true)
    [ -n "$DSE_ADDR" ] && break
    sleep 0.1
done
[ -n "$DSE_ADDR" ] || { echo "dse_server never reported LISTENING" >&2; kill "$DSE_PID" 2>/dev/null || true; exit 1; }
target/release/dse --addr "$DSE_ADDR" \
    --benches compress,li --grid 2+0,4+2 --budget 3000 --expect-stream
target/release/dse --addr "$DSE_ADDR" \
    --benches compress,li --grid 2+0,4+2 --budget 3000 \
    --expect-all-hits --expect-stream
wait "$DSE_PID"

echo "== DSE staleness gate (BENCH_dse.json vs KERNEL_VERSION)"
target/release/dse --check-stale BENCH_dse.json

if [ "$QUICK" = 1 ]; then
    # Perf smoke: two workloads, one rep. The binary itself asserts the
    # fast kernel is bit-identical to the reference kernel (serially and
    # through the sweep pool) and exits nonzero on any divergence;
    # speedups are reported in the log, not gated here.
    echo "== perf smoke (--quick: compress + li)"
    cargo run --release -q -p dda-bench --bin throughput -- \
        --quick --workloads compress,li --reps 1 \
        --out target/BENCH_throughput_smoke.json
else
    echo "== throughput smoke (--quick)"
    cargo run --release -q -p dda-bench --bin throughput -- \
        --quick --out target/BENCH_throughput_smoke.json

    echo "== fault-campaign smoke (--quick)"
    cargo run --release -q -p dda-bench --bin faults -- \
        --quick --out target/BENCH_faults_smoke.json
fi

echo "== verify OK"
