#!/usr/bin/env bash
# Standard pre-PR check: tier-1 verification plus a throughput smoke run.
#
#   scripts/verify.sh
#
# Tier-1 (from ROADMAP.md) is `cargo build --release && cargo test -q`.
# The throughput smoke run exercises the benchmark binary in `--quick`
# mode, which also cross-checks the incremental scheduler kernel against
# the rescan-per-cycle reference kernel on three workloads (the run
# aborts if any counter diverges). It writes its report to a throwaway
# path so the committed BENCH_throughput.json (full budget, all twelve
# workloads) is not clobbered by smoke numbers.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== throughput smoke (--quick)"
cargo run --release -q -p dda-bench --bin throughput -- \
    --quick --out target/BENCH_throughput_smoke.json

echo "== verify OK"
