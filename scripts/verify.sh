#!/usr/bin/env bash
# Standard pre-PR check: tier-1 verification plus smoke runs.
#
#   scripts/verify.sh
#
# Tier-1 (from ROADMAP.md) is `cargo build --release && cargo test -q`.
# The throughput smoke run exercises the benchmark binary in `--quick`
# mode, which also cross-checks the incremental scheduler kernel against
# the rescan-per-cycle reference kernel on three workloads (the run
# aborts if any counter diverges). The fault-campaign smoke run injects
# every fault class once and fails on any host panic or unexpected
# outcome. Both write their reports to throwaway paths so the committed
# BENCH_*.json files (full budgets) are not clobbered by smoke numbers.
#
# The clippy gate bans `.unwrap()`/`.expect()` from the hot simulation
# crates' library code (tests and benches are exempt via cfg(test)):
# every runtime failure there must surface as a typed error value.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== clippy: no unwrap/expect in simulation crates"
cargo clippy -q -p dda-core -p dda-vm -p dda-mem -p dda-program -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== throughput smoke (--quick)"
cargo run --release -q -p dda-bench --bin throughput -- \
    --quick --out target/BENCH_throughput_smoke.json

echo "== fault-campaign smoke (--quick)"
cargo run --release -q -p dda-bench --bin faults -- \
    --quick --out target/BENCH_faults_smoke.json

echo "== verify OK"
