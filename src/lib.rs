//! # dda — Data-Decoupled Architecture simulator
//!
//! Umbrella crate re-exporting the full simulator stack. See the README for a
//! tour and `DESIGN.md` for the system inventory.
//!
//! ```
//! use dda::prelude::*;
//! # fn main() {}
//! ```

pub use dda_core as core;
pub use dda_isa as isa;
pub use dda_mem as mem;
pub use dda_program as program;
pub use dda_stats as stats;
pub use dda_vm as vm;
pub use dda_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dda_core::*;
    pub use dda_isa::*;
    pub use dda_program::*;
    pub use dda_vm::*;
    pub use dda_workloads::*;
}
